module Func = Rs_ir.Func
module Instr = Rs_ir.Instr
module Interp = Rs_ir.Interp
module A = Rs_distill.Assumptions
module P = Rs_distill.Passes
module D = Rs_distill.Distill
module V = Rs_distill.Check
module Program = Rs_ir.Program

(* --- assumptions -------------------------------------------------------- *)

let test_assumptions_basics () =
  let a = A.branches [ (3, true); (5, false) ] in
  Alcotest.(check (option bool)) "site 3" (Some true) (A.direction a 3);
  Alcotest.(check (option bool)) "site 5" (Some false) (A.direction a 5);
  Alcotest.(check (option bool)) "unknown" None (A.direction a 9);
  Alcotest.(check bool) "empty" true (A.is_empty A.empty);
  Alcotest.(check bool) "nonempty" false (A.is_empty a)

let test_signature_stable () =
  let a = A.branches [ (3, true); (5, false) ] in
  let b = A.branches [ (5, false); (3, true) ] in
  Alcotest.(check string) "order independent" (A.signature a) (A.signature b);
  let c = A.branches [ (3, false); (5, false) ] in
  Alcotest.(check bool) "direction matters" false (A.signature a = A.signature c)

(* --- individual passes --------------------------------------------------- *)

let branchy =
  {
    Func.name = "branchy";
    entry = 0;
    nregs = 8;
    blocks =
      [|
        {
          Func.body = [| Instr.Load (0, 7, 0); Instr.Cmpi (Ne, 1, 0, 0) |];
          term = Func.Branch { cond = 1; site = 0; taken = 1; not_taken = 2 };
        };
        { Func.body = [| Instr.Li (2, 10) |]; term = Func.Jump 3 };
        { Func.body = [| Instr.Li (2, 20) |]; term = Func.Jump 3 };
        {
          Func.body = [| Instr.Addi (3, 2, 5); Instr.Store (7, 3, 1) |];
          term = Func.Ret (Some 3);
        };
      |];
  }

let test_apply_assumptions () =
  let f = P.apply_assumptions (A.branches [ (0, true) ]) branchy in
  (match (Func.block f 0).term with
  | Func.Jump 1 -> ()
  | _ -> Alcotest.fail "branch not replaced by jump to taken side");
  let f = P.apply_assumptions (A.branches [ (0, false) ]) branchy in
  match (Func.block f 0).term with
  | Func.Jump 2 -> ()
  | _ -> Alcotest.fail "branch not replaced by jump to not-taken side"

let test_apply_load_assumption () =
  let f = P.apply_assumptions { A.branches = []; loads = [ (0, 0, 42) ] } branchy in
  match (Func.block f 0).body.(0) with
  | Instr.Li (0, 42) -> ()
  | _ -> Alcotest.fail "load not replaced by immediate"

let test_constant_fold_chain () =
  let f =
    {
      Func.name = "consts";
      entry = 0;
      nregs = 4;
      blocks =
        [|
          {
            Func.body =
              [|
                Instr.Li (0, 6);
                Instr.Addi (1, 0, 4);
                Instr.Binop (Mul, 2, 0, 1);
                Instr.Cmpi (Gt, 3, 2, 50);
              |];
            term = Func.Ret (Some 2);
          };
        |];
    }
  in
  let f' = P.constant_fold f in
  (match (Func.block f' 0).body with
  | [| Instr.Li (0, 6); Instr.Li (1, 10); Instr.Li (2, 60); Instr.Li (3, 1) |] -> ()
  | _ -> Alcotest.failf "chain not folded: %s" (Format.asprintf "%a" Func.pp f'));
  ()

let test_constant_fold_cmp_to_cmpi () =
  let f =
    {
      Func.name = "cmps";
      entry = 0;
      nregs = 4;
      blocks =
        [|
          {
            Func.body =
              [| Instr.Load (0, 3, 0); Instr.Li (1, 32); Instr.Cmp (Lt, 2, 0, 1) |];
            term = Func.Ret (Some 2);
          };
        |];
    }
  in
  let f' = P.constant_fold f in
  (match (Func.block f' 0).body.(2) with
  | Instr.Cmpi (Lt, 2, 0, 32) -> ()
  | _ -> Alcotest.fail "cmp with constant rhs not folded to cmpi");
  (* constant on the left flips the comparison *)
  let f =
    {
      Func.name = "cmps2";
      entry = 0;
      nregs = 4;
      blocks =
        [|
          {
            Func.body =
              [| Instr.Load (0, 3, 0); Instr.Li (1, 32); Instr.Cmp (Lt, 2, 1, 0) |];
            term = Func.Ret (Some 2);
          };
        |];
    }
  in
  match (Func.block (P.constant_fold f) 0).body.(2) with
  | Instr.Cmpi (Gt, 2, 0, 32) -> ()
  | _ -> Alcotest.fail "cmp with constant lhs not flipped"

let test_constant_fold_branch () =
  let f =
    {
      Func.name = "cbranch";
      entry = 0;
      nregs = 2;
      blocks =
        [|
          {
            Func.body = [| Instr.Li (0, 1) |];
            term = Func.Branch { cond = 0; site = 0; taken = 1; not_taken = 2 };
          };
          { Func.body = [||]; term = Func.Ret (Some 0) };
          { Func.body = [||]; term = Func.Ret None };
        |];
    }
  in
  match (Func.block (P.constant_fold f) 0).term with
  | Func.Jump 1 -> ()
  | _ -> Alcotest.fail "constant branch not folded to jump"

let test_dce_removes_dead_load () =
  let f =
    {
      Func.name = "deadload";
      entry = 0;
      nregs = 4;
      blocks =
        [|
          {
            Func.body =
              [| Instr.Load (0, 3, 0) (* dead *); Instr.Li (1, 5); Instr.Store (3, 1, 1) |];
            term = Func.Ret (Some 1);
          };
        |];
    }
  in
  let f' = P.dead_code_elimination f in
  Alcotest.(check int) "dead load removed" 2 (Array.length (Func.block f' 0).body);
  match (Func.block f' 0).body.(0) with
  | Instr.Li (1, 5) -> ()
  | _ -> Alcotest.fail "wrong instruction removed"

let test_dce_keeps_stores_and_transitive_uses () =
  let f =
    {
      Func.name = "chain";
      entry = 0;
      nregs = 4;
      blocks =
        [|
          {
            Func.body =
              [| Instr.Li (0, 5); Instr.Addi (1, 0, 1); Instr.Store (3, 1, 0) |];
            term = Func.Ret None;
          };
        |];
    }
  in
  let f' = P.dead_code_elimination f in
  Alcotest.(check int) "nothing removed" 3 (Array.length (Func.block f' 0).body)

let test_dce_path_sensitivity_after_approx () =
  (* the figure-1 pattern: r1's first definition is dead only once the
     branch forcing the redefinition is assumed *)
  let f = Program.entry_func (fst (Rs_ir.Synth.figure1 ())) in
  let before = P.dead_code_elimination f in
  Alcotest.(check int) "x.b load live in original" (Func.static_size f)
    (Func.static_size before);
  let approx = P.apply_assumptions (A.branches [ (0, true) ]) f in
  let after = P.dead_code_elimination approx in
  Alcotest.(check bool) "x.b load dead after approximation" true
    (Func.static_size after < Func.static_size approx)

let test_simplify_cfg () =
  let f =
    {
      Func.name = "threads";
      entry = 0;
      nregs = 2;
      blocks =
        [|
          { Func.body = [| Instr.Li (0, 1) |]; term = Func.Jump 1 };
          { Func.body = [||]; term = Func.Jump 2 } (* empty hop *);
          { Func.body = [||]; term = Func.Ret (Some 0) };
          { Func.body = [| Instr.Li (1, 9) |]; term = Func.Ret None } (* unreachable *);
        |];
    }
  in
  let f' = P.simplify_cfg f in
  Alcotest.(check bool) "unreachable and hop removed" true (Array.length f'.blocks = 2);
  match (Func.block f' f'.entry).term with
  | Func.Jump l ->
    (match (Func.block f' l).term with
    | Func.Ret (Some 0) -> ()
    | _ -> Alcotest.fail "jump no longer reaches ret")
  | _ -> Alcotest.fail "entry shape changed"

let test_local_cse () =
  let f =
    {
      Func.name = "cse";
      entry = 0;
      nregs = 8;
      blocks =
        [|
          {
            Func.body =
              [|
                Instr.Load (0, 7, 0);
                Instr.Binop (Add, 1, 0, 0);
                Instr.Load (2, 7, 0) (* same load, no store between *);
                Instr.Binop (Add, 3, 2, 2) (* same expression via the copy *);
                Instr.Store (7, 3, 1);
                Instr.Load (4, 7, 0) (* the store kills load availability *);
                Instr.Store (7, 4, 2);
                Instr.Store (7, 1, 3);
              |];
            term = Func.Ret None;
          };
        |];
    }
  in
  let f' = P.local_cse f in
  (match (Func.block f' 0).body.(2) with
  | Instr.Mov (2, 0) -> ()
  | i -> Alcotest.failf "redundant load not CSEd: %s" (Format.asprintf "%a" Instr.pp i));
  (match (Func.block f' 0).body.(3) with
  | Instr.Mov (3, 1) -> ()
  | i -> Alcotest.failf "redundant add not CSEd: %s" (Format.asprintf "%a" Instr.pp i));
  (match (Func.block f' 0).body.(5) with
  | Instr.Load (4, 7, 0) -> ()
  | i -> Alcotest.failf "load across store wrongly CSEd: %s" (Format.asprintf "%a" Instr.pp i));
  (* the full pipeline then removes the Movs *)
  let opt = P.pipeline A.empty f in
  Alcotest.(check bool) "pipeline shrinks the block" true
    (Func.static_size opt < Func.static_size f)

let test_cse_respects_redefinition () =
  let f =
    {
      Func.name = "redef";
      entry = 0;
      nregs = 4;
      blocks =
        [|
          {
            Func.body =
              [|
                Instr.Binop (Add, 1, 0, 0);
                Instr.Addi (0, 0, 1) (* source redefined *);
                Instr.Binop (Add, 2, 0, 0) (* NOT the same expression *);
                Instr.Store (3, 1, 0);
                Instr.Store (3, 2, 1);
              |];
            term = Func.Ret None;
          };
        |];
    }
  in
  match (Func.block (P.local_cse f) 0).body.(2) with
  | Instr.Binop (Add, 2, 0, 0) -> ()
  | i -> Alcotest.failf "stale expression reused: %s" (Format.asprintf "%a" Instr.pp i)

let test_block_merging_via_pipeline () =
  (* after assuming every branch, the region collapses into a single
     straight-line block *)
  let region =
    Rs_ir.Synth.generate ~rng:(Rs_util.Prng.create 4) ~n_sites:3 ~first_site:0 ()
  in
  let a = A.branches [ (0, true); (1, false); (2, true) ] in
  let d = D.distill region.prog a in
  Alcotest.(check int) "single block remains" 1
    (Array.length (Program.entry_func d.distilled).Func.blocks)

(* --- the full pipeline --------------------------------------------------- *)

let test_figure1_distillation () =
  let p, branch_assumes = Rs_ir.Synth.figure1 () in
  let a = { A.branches = branch_assumes; loads = [ (2, 0, 32) ] } in
  let r = D.distill p a in
  Alcotest.(check bool) "meaningfully smaller" true
    (r.distilled_size <= r.original_size - 4);
  (* the only remaining branch is site 1, and the compare is against an
     immediate 32 (the paper's cmplt r1, 32) *)
  Alcotest.(check (list int)) "site 0 removed" [ 1 ] (Program.sites r.distilled);
  let found_cmpi32 = ref false in
  Array.iter
    (fun (b : Func.block) ->
      Array.iter
        (function Instr.Cmpi (Lt, _, _, 32) -> found_cmpi32 := true | _ -> ())
        b.body)
    (Program.entry_func r.distilled).Func.blocks;
  Alcotest.(check bool) "cmplt r1, 32 present" true !found_cmpi32

let test_cache () =
  let p, _ = Rs_ir.Synth.figure1 () in
  let cache = D.Cache.create p in
  let a = A.branches [ (0, true) ] in
  let r1 = D.Cache.get cache a in
  let r2 = D.Cache.get cache a in
  Alcotest.(check bool) "same result object" true (r1 == r2);
  Alcotest.(check int) "one entry" 1 (D.Cache.entries cache);
  let _ = D.Cache.get cache (A.branches [ (0, false) ]) in
  Alcotest.(check int) "two entries" 2 (D.Cache.entries cache)

let test_verify_catches_wrong_code () =
  let p, _ = Rs_ir.Synth.figure1 () in
  (* distill under a WRONG direction, then verify against inputs that
     satisfy the right direction: must diverge *)
  let wrong = D.distill p (A.branches [ (0, false) ]) in
  let prepare i =
    let mem = Array.make 8 0 in
    mem.(0) <- 1;
    mem.(2) <- 100 + i;
    mem.(3) <- 32;
    mem
  in
  match
    V.check ~orig:p ~distilled:wrong.distilled
      ~assumptions:(A.branches [ (0, true) ])
      ~prepare ~trials:20
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "verification failed to detect wrong distillation"

let test_verify_skips_inconsistent_trials () =
  let p, _ = Rs_ir.Synth.figure1 () in
  let d = D.distill p (A.branches [ (0, true) ]) in
  (* half the trials violate the assumption; they must not be counted *)
  let prepare i =
    let mem = Array.make 8 0 in
    mem.(0) <- i mod 2;
    mem.(3) <- 32;
    mem
  in
  match
    V.check ~orig:p ~distilled:d.distilled
      ~assumptions:(A.branches [ (0, true) ])
      ~prepare ~trials:40
  with
  | Ok rep ->
    Alcotest.(check int) "all trials ran" 40 rep.trials;
    Alcotest.(check int) "half consistent" 20 rep.consistent;
    Alcotest.(check int) "half violated" 20 rep.violated
  | Error e -> Alcotest.fail e

(* Differential property: on synthetic regions, distilled == original for
   every outcome vector consistent with random assumption sets. *)
let qcheck_distill_equivalence =
  QCheck.Test.make ~name:"distilled region == original under assumptions" ~count:60
    QCheck.(triple small_int (int_bound 15) (int_bound 15))
    (fun (seed, assume_mask, dir_mask) ->
      let region =
        Rs_ir.Synth.generate ~rng:(Rs_util.Prng.create seed) ~n_sites:4 ~first_site:0 ()
      in
      let branches =
        List.concat_map
          (fun j ->
            if assume_mask land (1 lsl j) <> 0 then [ (j, dir_mask land (1 lsl j) <> 0) ]
            else [])
          [ 0; 1; 2; 3 ]
      in
      let a = A.branches branches in
      let d = D.distill region.prog a in
      (* check all 16 outcome vectors consistent with the assumptions *)
      let ok = ref true in
      for v = 0 to 15 do
        let consistent =
          List.for_all (fun (j, dir) -> v land (1 lsl j) <> 0 = dir) branches
        in
        if consistent then begin
          let outcomes = Array.init 4 (fun j -> v land (1 lsl j) <> 0) in
          let mem_o = Array.make region.mem_size 0 in
          Rs_ir.Synth.set_inputs region ~mem:mem_o outcomes;
          (* randomize the globals so the work is data dependent *)
          let rng = Rs_util.Prng.create (seed + v) in
          for g = 4 to region.mem_size - 3 do
            mem_o.(g) <- Rs_util.Prng.int rng 1000
          done;
          let mem_d = Array.copy mem_o in
          let ro = Interp.run region.prog ~mem:mem_o in
          let rd = Interp.run d.distilled ~mem:mem_d in
          if ro.return_value <> rd.return_value || mem_o <> mem_d then ok := false
        end
      done;
      !ok)

(* Without assumptions the pipeline is a plain optimizer: it must
   preserve semantics exactly on every input. *)
let qcheck_pipeline_preserves_semantics =
  QCheck.Test.make ~name:"optimization passes preserve semantics (no assumptions)" ~count:60
    QCheck.(pair small_int (int_bound 15))
    (fun (seed, v) ->
      let region =
        Rs_ir.Synth.generate ~rng:(Rs_util.Prng.create seed) ~n_sites:4 ~first_site:0 ()
      in
      let opt = P.pipeline A.empty (Program.entry_func region.prog) in
      let outcomes = Array.init 4 (fun j -> v land (1 lsl j) <> 0) in
      let mem_o = Array.make region.mem_size 0 in
      Rs_ir.Synth.set_inputs region ~mem:mem_o outcomes;
      let rng = Rs_util.Prng.create (seed * 3 + v) in
      for g = 4 to region.mem_size - 3 do
        mem_o.(g) <- Rs_util.Prng.int rng 1000
      done;
      let mem_d = Array.copy mem_o in
      let ro = Interp.run region.prog ~mem:mem_o in
      let rd = Interp.run_func opt ~mem:mem_d in
      ro.return_value = rd.return_value && mem_o = mem_d)

let qcheck_pipeline_idempotent =
  QCheck.Test.make ~name:"distillation is idempotent" ~count:40
    QCheck.(pair small_int (int_bound 15))
    (fun (seed, assume_mask) ->
      let region =
        Rs_ir.Synth.generate ~rng:(Rs_util.Prng.create seed) ~n_sites:4 ~first_site:0 ()
      in
      let branches =
        List.concat_map
          (fun j -> if assume_mask land (1 lsl j) <> 0 then [ (j, true) ] else [])
          [ 0; 1; 2; 3 ]
      in
      let a = A.branches branches in
      let once = (D.distill region.prog a).distilled in
      let twice = (D.distill once A.empty).distilled in
      Program.static_size twice = Program.static_size once)

let qcheck_distill_never_grows =
  QCheck.Test.make ~name:"distillation never grows the code" ~count:60
    QCheck.(pair small_int (int_bound 15))
    (fun (seed, assume_mask) ->
      let region =
        Rs_ir.Synth.generate ~rng:(Rs_util.Prng.create seed) ~n_sites:4 ~first_site:0 ()
      in
      let branches =
        List.concat_map
          (fun j -> if assume_mask land (1 lsl j) <> 0 then [ (j, true) ] else [])
          [ 0; 1; 2; 3 ]
      in
      let d = D.distill region.prog (A.branches branches) in
      d.distilled_size <= d.original_size)


(* --- interprocedural: inlining, splitting, pruning ------------------------ *)

let multi_region seed =
  Rs_ir.Synth.program ~rng:(Rs_util.Prng.create seed) ~helper_sites:2 ~loop_trips:2
    ~first_site:0 ()

let assume_of a site = A.direction a site

let test_inline_calls () =
  let region = multi_region 5 in
  let a = A.branches [ (0, true); (1, true); (4, true) ] in
  let inlined, count = P.inline_calls ~assume:(assume_of a) region.prog in
  Alcotest.(check bool) "inlined at least one call" true (count >= 1);
  Alcotest.(check bool) "still valid" true (Result.is_ok (Program.validate inlined));
  (* inlining is exact: equivalence must hold on EVERY input, assumptions
     satisfied or not *)
  for v = 0 to 31 do
    let outcomes = Array.init 5 (fun j -> v land (1 lsl j) <> 0) in
    let mem_o = Array.make region.mem_size 0 in
    Rs_ir.Synth.set_inputs region ~mem:mem_o outcomes;
    for g = 5 to region.mem_size - 3 do
      mem_o.(g) <- (v * 37) + g
    done;
    let mem_i = Array.copy mem_o in
    let ro = Interp.run region.prog ~mem:mem_o in
    let ri = Interp.run inlined ~mem:mem_i in
    Alcotest.(check (option int))
      (Printf.sprintf "return equal on vector %d" v)
      ro.Interp.return_value ri.Interp.return_value;
    Alcotest.(check bool) (Printf.sprintf "memory equal on vector %d" v) true (mem_o = mem_i)
  done

let test_inline_budget_zero () =
  let region = multi_region 5 in
  let p, count = P.inline_calls ~budget:0 ~assume:(fun _ -> None) region.prog in
  Alcotest.(check int) "no inlining under zero budget" 0 count;
  Alcotest.(check bool) "program untouched" true (p == region.prog)

let test_hot_cold_split () =
  let f', split = P.hot_cold_split ~assume:(fun _ -> Some true) branchy in
  Alcotest.(check int) "hot blocks" 3 split.P.hot_blocks;
  Alcotest.(check int) "cold blocks" 1 split.P.cold_blocks;
  Alcotest.(check int) "cold entries" 1 split.P.cold_entries;
  Alcotest.(check int) "pure reorder keeps size" (Func.static_size branchy)
    (Func.static_size f');
  (* layout must not change behaviour in either branch direction *)
  List.iter
    (fun x ->
      let mem_o = Array.make 4 x in
      let mem_s = Array.copy mem_o in
      let ro = Interp.run_func branchy ~mem:mem_o in
      let rs = Interp.run_func f' ~mem:mem_s in
      Alcotest.(check (option int)) "return equal" ro.Interp.return_value
        rs.Interp.return_value;
      Alcotest.(check bool) "memory equal" true (mem_o = mem_s))
    [ 0; 1 ];
  (* a fully hot function splits to the identity *)
  let g, split0 = P.hot_cold_split ~assume:(fun _ -> None) branchy in
  Alcotest.(check int) "static prediction leaves one cold block" 1 split0.P.cold_blocks;
  ignore g

let test_prune_dead_funcs () =
  let region = multi_region 9 in
  let a = A.branches [ (0, true); (1, true); (4, true) ] in
  (* inline everything reachable: helpers become dead once no call
     remains, and pruning must compact them away *)
  let inlined, count = P.inline_calls ~budget:32 ~assume:(assume_of a) region.prog in
  Alcotest.(check bool) "all call sites inlined" true (count >= 4);
  let pruned = P.prune_dead_funcs inlined in
  Alcotest.(check int) "only the entry survives" 1 (Program.n_funcs pruned);
  Alcotest.(check bool) "still valid" true (Result.is_ok (Program.validate pruned));
  let mem_o = Array.make region.mem_size 0 in
  Rs_ir.Synth.set_inputs region ~mem:mem_o (Array.make 5 true);
  let mem_p = Array.copy mem_o in
  let ro = Interp.run region.prog ~mem:mem_o in
  let rp = Interp.run pruned ~mem:mem_p in
  Alcotest.(check (option int)) "semantics survive pruning" ro.Interp.return_value
    rp.Interp.return_value;
  (* a program with every function reachable is returned physically intact *)
  Alcotest.(check bool) "identity when nothing is dead" true
    (P.prune_dead_funcs region.prog == region.prog)

let test_distill_program_stats () =
  let region = multi_region 11 in
  let a = A.branches [ (0, true); (1, true); (4, true) ] in
  let r = D.distill region.prog a in
  Alcotest.(check bool) "valid distilled program" true
    (Result.is_ok (Program.validate r.distilled));
  Alcotest.(check bool) "inlined calls counted" true (r.stats.D.inlined_calls >= 1);
  Alcotest.(check bool) "hot blocks counted" true (r.stats.D.hot_blocks >= 1);
  Alcotest.(check bool) "split covers the entry function" true
    (r.stats.D.hot_blocks + r.stats.D.cold_blocks
    = Array.length (Program.entry_func r.distilled).Func.blocks);
  Alcotest.(check bool) "never grows" true (r.distilled_size <= r.original_size)

(* The headline acceptance property: over many random multi-function
   programs and inputs (25 programs x 48 memories = 1200 pairs), the
   distilled code agrees with the original whenever the assumptions
   hold, and every single-site violation is observably detected. *)
let qcheck_program_differential =
  QCheck.Test.make ~name:"interprocedural distillation: agree when consistent, detect violations"
    ~count:25 QCheck.small_int
    (fun seed ->
      let region = multi_region (seed + 1) in
      let a = A.branches [ (0, true); (1, true); (4, true) ] in
      let d = D.distill region.prog a in
      let prepare i =
        let mem = Array.make region.mem_size 0 in
        Array.iteri
          (fun j site ->
            mem.(j) <-
              (match A.direction a site with
              | Some dir -> if dir then 1 else 0
              | None -> (i lsr j) land 1))
          region.site_ids;
        (* every 8th memory flips exactly one assumed site's input *)
        (if i mod 8 = 7 then
           let cell = [| 0; 1; 4 |].((i / 8) mod 3) in
           mem.(cell) <- 1 - mem.(cell));
        for g = 0 to 15 do
          mem.(5 + g) <- (seed * 17) + (i * 31) + g
        done;
        mem
      in
      match
        V.check ~orig:region.prog ~distilled:d.distilled ~assumptions:a ~prepare
          ~trials:48
      with
      | Ok rep ->
        rep.V.trials = 48
        && rep.V.consistent + rep.V.violated = 48
        && rep.V.violated > 0
        && rep.V.detected = rep.V.violated
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "assumptions basics" `Quick test_assumptions_basics;
    Alcotest.test_case "signature stable" `Quick test_signature_stable;
    Alcotest.test_case "apply branch assumptions" `Quick test_apply_assumptions;
    Alcotest.test_case "apply load assumption" `Quick test_apply_load_assumption;
    Alcotest.test_case "constant fold chain" `Quick test_constant_fold_chain;
    Alcotest.test_case "cmp folds to cmpi" `Quick test_constant_fold_cmp_to_cmpi;
    Alcotest.test_case "constant branch folds" `Quick test_constant_fold_branch;
    Alcotest.test_case "dce removes dead load" `Quick test_dce_removes_dead_load;
    Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores_and_transitive_uses;
    Alcotest.test_case "dce after approximation (figure 1)" `Quick
      test_dce_path_sensitivity_after_approx;
    Alcotest.test_case "simplify cfg" `Quick test_simplify_cfg;
    Alcotest.test_case "local cse" `Quick test_local_cse;
    Alcotest.test_case "cse respects redefinition" `Quick test_cse_respects_redefinition;
    Alcotest.test_case "block merging via pipeline" `Quick test_block_merging_via_pipeline;
    Alcotest.test_case "figure 1 distillation" `Quick test_figure1_distillation;
    Alcotest.test_case "distillation cache" `Quick test_cache;
    Alcotest.test_case "verify catches wrong code" `Quick test_verify_catches_wrong_code;
    Alcotest.test_case "verify skips inconsistent trials" `Quick
      test_verify_skips_inconsistent_trials;
    Alcotest.test_case "inline calls (exact)" `Quick test_inline_calls;
    Alcotest.test_case "inline budget zero" `Quick test_inline_budget_zero;
    Alcotest.test_case "hot/cold split" `Quick test_hot_cold_split;
    Alcotest.test_case "prune dead funcs" `Quick test_prune_dead_funcs;
    Alcotest.test_case "distill program stats" `Quick test_distill_program_stats;
    QCheck_alcotest.to_alcotest qcheck_program_differential;
    QCheck_alcotest.to_alcotest qcheck_distill_equivalence;
    QCheck_alcotest.to_alcotest qcheck_distill_never_grows;
    QCheck_alcotest.to_alcotest qcheck_pipeline_preserves_semantics;
    QCheck_alcotest.to_alcotest qcheck_pipeline_idempotent;
  ]
