(* Equivalence tests for the batched/packed hot path.

   Two independent oracles:

   - [Reference]: the original record-per-branch implementation of the
     Figure 4(b) controller, kept here verbatim as an executable spec.
     The packed-integer [Rs_core.Reactive] must agree with it decision
     for decision, transition for transition, on adversarial parameter
     corners (tiny monitor periods, oscillation limits of 1, zero and
     non-zero optimization latency, sampled and continuous eviction).

   - The boxed event-record engine paths: the chunked batch decode and
     the raw observer must produce the same results and hook sequences
     as the [Stream.event]-based paths they replaced. *)

module B = Rs_behavior.Behavior
module Pop = Rs_behavior.Population
module Stream = Rs_behavior.Stream
module TS = Rs_behavior.Trace_store
module Prng = Rs_util.Prng
module Params = Rs_core.Params
module Types = Rs_core.Types
module Reactive = Rs_core.Reactive

(* ---------------------------------------------------------------------- *)
(* Reference controller: the record-based FSM, as an executable spec      *)
(* ---------------------------------------------------------------------- *)

module Reference = struct
  type phase = Monitoring | Biased | Unbiased | Disabled

  type bstate = {
    mutable phase : phase;
    mutable execs : int;
    mutable mon_seen : int;
    mutable mon_taken : int;
    mutable stride_pos : int;
    mutable direction : bool;
    mutable counter : int;
    mutable smp_pos : int;
    mutable smp_misses : int;
    mutable wait_left : int;
    mutable dep_spec : bool;
    mutable dep_dir : bool;
    mutable pend_at : int;
    mutable pend_spec : bool;
    mutable pend_dir : bool;
    mutable selections : int;
    mutable evictions : int;
  }

  type t = {
    params : Params.t;
    monitor_samples : int;
    states : bstate array;
    mutable transitions_rev : Types.transition list;
  }

  let fresh_state () =
    {
      phase = Monitoring;
      execs = 0;
      mon_seen = 0;
      mon_taken = 0;
      stride_pos = 0;
      direction = false;
      counter = 0;
      smp_pos = 0;
      smp_misses = 0;
      wait_left = 0;
      dep_spec = false;
      dep_dir = false;
      pend_at = -1;
      pend_spec = false;
      pend_dir = false;
      selections = 0;
      evictions = 0;
    }

  let create ~n_branches params =
    {
      params;
      monitor_samples = Params.monitor_samples params;
      states = Array.init n_branches (fun _ -> fresh_state ());
      transitions_rev = [];
    }

  let deployed t b =
    let st = t.states.(b) in
    { Types.speculate = st.dep_spec; direction = st.dep_dir }

  let transitions t = List.rev t.transitions_rev
  let selections t b = t.states.(b).selections
  let evictions t b = t.states.(b).evictions
  let touched t b = t.states.(b).execs > 0

  let record t branch st instr kind =
    t.transitions_rev <- { Types.branch; instr; exec_index = st.execs; kind } :: t.transitions_rev

  let request t st ~instr ~speculate ~direction =
    if t.params.Params.optimization_latency = 0 then begin
      st.dep_spec <- speculate;
      st.dep_dir <- direction;
      st.pend_at <- -1
    end
    else begin
      st.pend_at <- instr + t.params.optimization_latency;
      st.pend_spec <- speculate;
      st.pend_dir <- direction
    end

  let enter_monitor st =
    st.phase <- Monitoring;
    st.mon_seen <- 0;
    st.mon_taken <- 0;
    st.stride_pos <- 0

  let enter_unbiased t st =
    st.phase <- Unbiased;
    st.wait_left <- t.params.wait_period

  let enter_biased t st ~direction ~instr =
    st.phase <- Biased;
    st.direction <- direction;
    st.counter <- 0;
    st.smp_pos <- 0;
    st.smp_misses <- 0;
    st.selections <- st.selections + 1;
    request t st ~instr ~speculate:true ~direction

  let evict t branch st ~instr =
    st.evictions <- st.evictions + 1;
    record t branch st instr Types.Evicted;
    enter_monitor st;
    request t st ~instr ~speculate:false ~direction:false

  let classify t branch st ~instr =
    let taken = st.mon_taken and seen = st.mon_seen in
    let majority = max taken (seen - taken) in
    let bias = float_of_int majority /. float_of_int seen in
    if bias >= t.params.selection_threshold then begin
      if st.selections >= t.params.oscillation_limit then begin
        st.phase <- Disabled;
        record t branch st instr Types.Capped;
        if st.dep_spec || st.pend_at >= 0 then
          request t st ~instr ~speculate:false ~direction:false
      end
      else begin
        let direction = taken * 2 >= seen in
        enter_biased t st ~direction ~instr;
        record t branch st instr Types.Selected
      end
    end
    else begin
      enter_unbiased t st;
      record t branch st instr Types.Declared_unbiased
    end

  let observe_biased t branch st ~taken ~instr =
    if not st.dep_spec then ()
    else begin
      match t.params.eviction_mode with
      | Params.Continuous ->
        if t.params.enable_eviction then begin
          let c =
            if taken <> st.direction then st.counter + t.params.misspec_step
            else st.counter - t.params.correct_step
          in
          st.counter <- (if c < 0 then 0 else c);
          if st.counter >= t.params.evict_threshold then evict t branch st ~instr
        end
      | Params.Sampled { window; samples } ->
        if t.params.enable_eviction then begin
          if st.smp_pos < samples && taken <> st.direction then
            st.smp_misses <- st.smp_misses + 1;
          st.smp_pos <- st.smp_pos + 1;
          if st.smp_pos = samples then begin
            let bias = float_of_int (samples - st.smp_misses) /. float_of_int samples in
            if bias < t.params.evict_bias then evict t branch st ~instr
            else st.smp_misses <- 0
          end
          else if st.smp_pos >= window then begin
            st.smp_pos <- 0;
            st.smp_misses <- 0
          end
        end
    end

  let observe_state t branch st ~taken ~instr =
    if st.pend_at >= 0 && instr >= st.pend_at then begin
      st.dep_spec <- st.pend_spec;
      st.dep_dir <- st.pend_dir;
      st.pend_at <- -1
    end;
    (match st.phase with
    | Monitoring ->
      st.stride_pos <- st.stride_pos + 1;
      if st.stride_pos >= t.params.monitor_stride then begin
        st.stride_pos <- 0;
        st.mon_seen <- st.mon_seen + 1;
        if taken then st.mon_taken <- st.mon_taken + 1;
        if st.mon_seen >= t.monitor_samples then classify t branch st ~instr
      end
    | Biased -> observe_biased t branch st ~taken ~instr
    | Unbiased ->
      if t.params.enable_revisit then begin
        st.wait_left <- st.wait_left - 1;
        if st.wait_left <= 0 then begin
          enter_monitor st;
          record t branch st instr Types.Revisited
        end
      end
    | Disabled -> ());
    st.execs <- st.execs + 1

  let step t ~branch ~taken ~instr =
    let st = t.states.(branch) in
    let d = { Types.speculate = st.dep_spec; direction = st.dep_dir } in
    observe_state t branch st ~taken ~instr;
    d
end

(* ---------------------------------------------------------------------- *)
(* Packed controller == reference, on adversarial parameter corners       *)
(* ---------------------------------------------------------------------- *)

(* Aggressive little parameter sets: tiny monitor periods and wait
   periods so a few thousand events cycle every arc, oscillation limits
   down to 1 (retirement), latencies of zero (immediate deployment) and
   a few hundred instructions (pending windows that straddle many
   events). *)
let gen_params rng =
  let sampled =
    let window = 8 + Prng.int rng 60 in
    Params.Sampled { window; samples = 1 + Prng.int rng window }
  in
  {
    Params.monitor_period = 2 + Prng.int rng 30;
    selection_threshold = 0.55 +. Prng.float rng 0.44;
    evict_threshold = 5 + Prng.int rng 60;
    misspec_step = 1 + Prng.int rng 10;
    correct_step = 1 + Prng.int rng 3;
    evict_bias = 0.55 +. Prng.float rng 0.44;
    wait_period = 5 + Prng.int rng 60;
    oscillation_limit = 1 + Prng.int rng 4;
    optimization_latency = (match Prng.int rng 3 with 0 -> 0 | 1 -> 40 | _ -> 400);
    eviction_mode = (if Prng.bool rng then Params.Continuous else sampled);
    monitor_stride = 1 + Prng.int rng 3;
    enable_eviction = Prng.int rng 6 <> 0;
    enable_revisit = Prng.int rng 6 <> 0;
  }

type fsm_case = { seed : int; params : Params.t; n : int; length : int }

let gen_fsm_case rng =
  { seed = Prng.int rng 1_000_000; params = gen_params rng; n = 1 + Prng.int rng 6; length = 4_000 }

let print_fsm_case c =
  Format.asprintf "seed=%d n=%d len=%d params=@[%a@]" c.seed c.n c.length Params.pp c.params

let fsm_equivalent { seed; params; n; length } =
  (match Params.validate params with
  | Ok () -> ()
  | Error m -> Alcotest.failf "generated invalid params: %s" m);
  let rng = Prng.create seed in
  let packed = Reactive.create ~n_branches:n params in
  let reference = Reference.create ~n_branches:n params in
  let biases = Array.init n (fun _ -> Prng.float rng 1.0) in
  let instr = ref 0 in
  let ok = ref true in
  for _ = 1 to length do
    let b = Prng.int rng n in
    (* strongly phase-dependent outcomes so monitors re-classify *)
    let taken = Prng.float rng 1.0 < biases.(b) in
    if Prng.int rng 50 = 0 then biases.(b) <- Prng.float rng 1.0;
    instr := !instr + Prng.int rng 4;
    let d_packed = Reactive.step packed ~branch:b ~taken ~instr:!instr in
    let d_ref = Reference.step reference ~branch:b ~taken ~instr:!instr in
    if d_packed <> d_ref then ok := false
  done;
  !ok
  && Reactive.transitions packed = Reference.transitions reference
  && List.init n (fun b ->
         ( Reactive.deployed packed b,
           Reactive.selections packed b,
           Reactive.evictions packed b,
           Reactive.touched packed b ))
     = List.init n (fun b ->
           ( Reference.deployed reference b,
             Reference.selections reference b,
             Reference.evictions reference b,
             Reference.touched reference b ))

(* Deterministic corner: oscillation retirement.  One branch, monitor
   period 1, eviction after a single misspeculation, limit 1 — the
   second selection attempt must cap the branch, and both
   implementations must agree on the exact transition list. *)
let test_oscillation_retirement () =
  let params =
    {
      Params.default with
      monitor_period = 1;
      selection_threshold = 0.6;
      evict_threshold = 1;
      misspec_step = 1;
      correct_step = 1;
      wait_period = 3;
      oscillation_limit = 1;
      optimization_latency = 0;
      monitor_stride = 1;
    }
  in
  let packed = Reactive.create ~n_branches:1 params in
  let reference = Reference.create ~n_branches:1 params in
  (* taken -> Selected(taken); not-taken -> Evicted; taken -> Capped *)
  let feed taken instr =
    let d1 = Reactive.step packed ~branch:0 ~taken ~instr in
    let d2 = Reference.step reference ~branch:0 ~taken ~instr in
    Alcotest.(check bool) "step agrees" true (d1 = d2)
  in
  List.iteri (fun i taken -> feed taken (10 * (i + 1))) [ true; false; true; true; true ];
  let kinds t = List.map (fun (tr : Types.transition) -> tr.kind) t in
  Alcotest.(check bool)
    "capped after one eviction" true
    (kinds (Reactive.transitions packed) = [ Types.Selected; Types.Evicted; Types.Capped ]);
  Alcotest.(check bool)
    "reference agrees" true
    (Reactive.transitions packed = Reference.transitions reference);
  Alcotest.(check bool)
    "retired branch never speculates" true
    (not (Reactive.deployed packed 0).speculate)

(* Deterministic corner: pending-deployment latency.  With latency L, a
   selection at instruction I deploys at the first observation with
   instr >= I + L — and the observation that activates it is still
   scored against the old decision. *)
let test_pending_deployment_latency () =
  let params =
    {
      Params.default with
      monitor_period = 2;
      selection_threshold = 0.6;
      optimization_latency = 100;
      enable_eviction = false;
      enable_revisit = false;
    }
  in
  let packed = Reactive.create ~n_branches:1 params in
  let reference = Reference.create ~n_branches:1 params in
  let feed taken instr =
    let d1 = Reactive.step packed ~branch:0 ~taken ~instr in
    let d2 = Reference.step reference ~branch:0 ~taken ~instr in
    Alcotest.(check bool) "step agrees" true (d1 = d2);
    d1
  in
  (* two monitored executions at instr 10, 20: Selected(taken) at 20,
     pending until instr 120 *)
  ignore (feed true 10);
  ignore (feed true 20);
  let d = feed true 60 in
  Alcotest.(check bool) "not deployed during latency" false d.Types.speculate;
  (* the activating event itself is scored against the old decision *)
  let d = feed true 120 in
  Alcotest.(check bool) "activation event scored against old code" false d.Types.speculate;
  let d = feed true 130 in
  Alcotest.(check bool) "deployed after latency" true d.Types.speculate;
  Alcotest.(check bool) "deployed direction" true d.Types.direction

(* Regression: the documented non-decreasing-instr precondition is now
   checked.  A decreasing instruction count must raise Invalid_argument
   naming the entry point; equal counts stay legal. *)
let test_observe_monotonic_guard () =
  let t = Reactive.create ~n_branches:2 Params.default in
  Reactive.observe t ~branch:0 ~taken:true ~instr:100;
  Reactive.observe t ~branch:1 ~taken:false ~instr:100;
  (* equal is fine *)
  let raised_observe =
    try
      Reactive.observe t ~branch:0 ~taken:true ~instr:99;
      None
    with Invalid_argument m -> Some m
  in
  (match raised_observe with
  | Some m ->
    Alcotest.(check bool) "names Reactive.observe" true
      (String.length m >= 16 && String.sub m 0 16 = "Reactive.observe")
  | None -> Alcotest.fail "observe accepted a decreasing instr");
  let raised_step =
    try
      ignore (Reactive.step t ~branch:0 ~taken:true ~instr:3 : Types.decision);
      None
    with Invalid_argument m -> Some m
  in
  (match raised_step with
  | Some m ->
    Alcotest.(check bool) "names Reactive.step" true
      (String.length m >= 13 && String.sub m 0 13 = "Reactive.step")
  | None -> Alcotest.fail "step accepted a decreasing instr");
  (* the failed calls must not have corrupted the high-water mark *)
  Reactive.observe t ~branch:0 ~taken:true ~instr:100

(* ---------------------------------------------------------------------- *)
(* Batched chunk decode == scalar replay                                  *)
(* ---------------------------------------------------------------------- *)

let mk_pop ~n seed =
  let rng = Prng.create (seed + 101) in
  Pop.create
    (Array.init n (fun id ->
         let behavior =
           match Prng.int rng 4 with
           | 0 -> B.Stationary (Prng.float rng 1.0)
           | 1 -> B.Flip_at { threshold = 1 + Prng.int rng 500; first = Prng.int rng 2 = 0 }
           | 2 -> B.Stationary 0.999
           | _ -> B.Stationary 0.5
         in
         { Pop.id; behavior; weight = 0.1 +. Prng.float rng 2.0 }))

(* The event-for-event scalar oracle: replay boxed events through the
   reference FSM with the engine's scoring rule. *)
let scalar_run tr params n =
  let reference = Reference.create ~n_branches:n params in
  let correct = ref 0 in
  let incorrect = ref 0 in
  let last = ref 0 in
  let gap_count = ref 0 in
  let gap_sum = ref 0 in
  TS.replay tr (fun (ev : Stream.event) ->
      let d = Reference.step reference ~branch:ev.branch ~taken:ev.taken ~instr:ev.instr in
      if d.Types.speculate then begin
        if ev.taken = d.direction then incr correct
        else begin
          incr incorrect;
          incr gap_count;
          gap_sum := !gap_sum + (ev.instr - !last);
          last := ev.instr
        end
      end);
  (!correct, !incorrect, !gap_count, !gap_sum, Reference.transitions reference)

let batch_run tr params n =
  let controller = Reactive.create ~n_branches:n params in
  let b = Rs_sim.Engine.batch controller in
  TS.fold_packed_chunks tr ~init:() (fun () chunk len -> Rs_sim.Engine.run_chunk b chunk len);
  ( b.Rs_sim.Engine.b_correct,
    b.b_incorrect,
    Rs_util.Running_stats.count b.b_gaps,
    int_of_float (Rs_util.Running_stats.sum b.b_gaps +. 0.5),
    Reactive.transitions controller )

let qcheck_batch_equals_scalar =
  QCheck.Test.make ~name:"Engine.run_chunk == scalar replay through reference FSM" ~count:40
    QCheck.(pair (int_bound 100_000) (int_range 1 10))
    (fun (seed, n) ->
      let pop = mk_pop ~n seed in
      let cfg = { Stream.seed; instr_per_branch = 5.0; length = 30_000 + (seed mod 3) } in
      let params =
        Params.compress ~factor:200 { Params.default with monitor_period = 50 }
      in
      let tr = TS.record pop cfg in
      let c1, i1, g1, s1, trs1 = scalar_run tr params n in
      let c2, i2, g2, s2, trs2 = batch_run tr params n in
      c1 = c2 && i1 = i2 && g1 = g2 && abs (s1 - s2) <= 1 && trs1 = trs2)

(* ---------------------------------------------------------------------- *)
(* Adversarial corners: the workload family built to hammer the FSM's    *)
(* own thresholds must not split the batched and scalar paths            *)
(* ---------------------------------------------------------------------- *)

module Adv = Rs_workload.Adversary
module MT = Rs_workload.Mistrain
module IL = Rs_workload.Interleave

let paths_agree tr params n =
  let c1, i1, g1, s1, t1 = scalar_run tr params n in
  let c2, i2, g2, s2, t2 = batch_run tr params n in
  c1 = c2 && i1 = i2 && g1 = g2 && abs (s1 - s2) <= 1 && t1 = t2

let qcheck_adversary_batch_equals_scalar =
  QCheck.Test.make
    ~name:"batched == scalar on threshold-flip adversarial populations" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let params = gen_params (Prng.create (seed + 17)) in
      let sc = List.nth Adv.all (seed mod List.length Adv.all) in
      let pop, cfg = Adv.build sc ~params ~seed ~scale:1.0 in
      let tr = TS.record pop cfg in
      paths_agree tr params (Pop.size pop))

let qcheck_mistrain_batch_equals_scalar =
  QCheck.Test.make ~name:"batched == scalar on mistraining burst schedules" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let params = gen_params (Prng.create (seed + 23)) in
      let schedule = if seed mod 2 = 0 then MT.Train_then_trigger else MT.Burst_poison in
      let strength = 0.3 +. (0.65 *. float_of_int (seed mod 7) /. 6.0) in
      let b = MT.build schedule ~strength ~params ~seed ~scale:0.3 in
      let tr = TS.record b.population b.config in
      paths_agree tr params (Pop.size b.population))

(* The merged traces are fabricated (Trace_store.of_events, not a
   Stream recording): the chunk decode must agree with boxed replay on
   them too. *)
let qcheck_interleave_batch_equals_scalar =
  QCheck.Test.make
    ~name:"batched chunk decode == scalar replay on interleaved multi-context traces"
    ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let params = gen_params (Prng.create (seed + 31)) in
      let schedule = if seed mod 2 = 0 then IL.Round_robin else IL.Bursty in
      let m = IL.build schedule ~seed ~scale:0.25 in
      let check (_, _, tr) = paths_agree tr params (TS.n_branches tr) in
      check m.shared && check m.split)

(* Engine.run: every path — hookless batched (explicit trace and the
   auto memo), raw observer, boxed observer — produces identical
   results, and the raw observer sees the boxed observer's exact
   sequence. *)
let test_engine_paths_agree () =
  let n = 9 in
  let pop = mk_pop ~n 7 in
  let cfg = { Stream.seed = 21; instr_per_branch = 5.0; length = 30_000 } in
  let params = Params.compress ~factor:200 { Params.default with monitor_period = 50 } in
  let tr = TS.record pop cfg in
  let summary (r : Rs_sim.Engine.result) =
    ( r.total_events,
      r.total_instructions,
      r.correct,
      r.incorrect,
      Rs_util.Running_stats.count r.misspec_gap,
      Reactive.transitions r.controller )
  in
  let boxed_seq = ref [] in
  let raw_seq = ref [] in
  let code_of (d : Types.decision) =
    (if d.speculate then 1 else 0) lor if d.direction then 2 else 0
  in
  let r_boxed =
    Rs_sim.Engine.run
      ~observer:(fun ev d -> boxed_seq := (ev.branch, ev.taken, ev.instr, code_of d) :: !boxed_seq)
      ~trace:tr pop cfg params
  in
  let r_raw =
    Rs_sim.Engine.run
      ~observer_raw:(fun ~branch ~taken ~instr ~code ->
        raw_seq := (branch, taken, instr, code) :: !raw_seq)
      ~trace:tr pop cfg params
  in
  let r_batched = Rs_sim.Engine.run ~trace:tr pop cfg params in
  let r_auto = Rs_sim.Engine.run pop cfg params in
  TS.set_auto false;
  let r_noauto =
    Fun.protect ~finally:(fun () -> TS.set_auto true) (fun () -> Rs_sim.Engine.run pop cfg params)
  in
  Alcotest.(check bool) "raw == boxed result" true (summary r_raw = summary r_boxed);
  Alcotest.(check bool) "batched == boxed result" true (summary r_batched = summary r_boxed);
  Alcotest.(check bool) "auto-memo == boxed result" true (summary r_auto = summary r_boxed);
  Alcotest.(check bool) "auto-off == boxed result" true (summary r_noauto = summary r_boxed);
  Alcotest.(check bool) "raw observer sees boxed sequence" true (!raw_seq = !boxed_seq);
  Alcotest.(check bool) "observer sequence nonempty" true (!boxed_seq <> [])

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"packed Reactive == reference record FSM" ~count:120
         (QCheck.make (fun st ->
              gen_fsm_case (Prng.create (QCheck.Gen.int_bound 0x3FFFFFFF st)))
            ~print:print_fsm_case)
         fsm_equivalent);
    Alcotest.test_case "oscillation retirement (packed == reference)" `Quick
      test_oscillation_retirement;
    Alcotest.test_case "pending-deployment latency edge" `Quick test_pending_deployment_latency;
    Alcotest.test_case "observe validates non-decreasing instr" `Quick
      test_observe_monotonic_guard;
    QCheck_alcotest.to_alcotest qcheck_batch_equals_scalar;
    QCheck_alcotest.to_alcotest qcheck_adversary_batch_equals_scalar;
    QCheck_alcotest.to_alcotest qcheck_mistrain_batch_equals_scalar;
    QCheck_alcotest.to_alcotest qcheck_interleave_batch_equals_scalar;
    Alcotest.test_case "engine paths agree (batched/raw/boxed/auto)" `Quick
      test_engine_paths_agree;
  ]
