module Pool = Rs_util.Pool

(* Uneven per-item work so completion order differs from submission
   order under contention: map_ordered must still return results in
   input order. *)
let busy n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 7) + i
  done;
  !acc

let test_ordering () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  let input = Array.init 64 (fun i -> i) in
  let out =
    Pool.map_ordered pool
      (fun i ->
        ignore (busy (if i mod 3 = 0 then 50_000 else 100));
        i * i)
      input
  in
  Alcotest.(check (array int)) "squares in input order"
    (Array.map (fun i -> i * i) input)
    out

let test_exception_propagation () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  let input = Array.init 32 (fun i -> i) in
  (* several items fail; the lowest failing index (5) must win so the
     raised exception is deterministic *)
  let raised =
    try
      ignore
        (Pool.map_ordered pool
           (fun i ->
             ignore (busy 1_000);
             if i mod 5 = 0 && i > 0 then failwith (Printf.sprintf "boom %d" i);
             i)
           input);
      None
    with Failure msg -> Some msg
  in
  Alcotest.(check (option string)) "lowest failing index wins" (Some "boom 5") raised;
  (* a failed map must leave the pool usable *)
  let out = Pool.map_ordered pool (fun i -> i + 1) input in
  Alcotest.(check int) "pool survives a failure" 32 out.(31)

let test_reuse_and_nesting () =
  let pool = Pool.create ~jobs:3 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  (* repeated maps on one pool *)
  for round = 1 to 5 do
    let out = Pool.map_ordered pool (fun i -> i * round) (Array.init 16 (fun i -> i)) in
    Alcotest.(check int) "reuse round" (15 * round) out.(15)
  done;
  (* nested map_ordered on the same pool: the outer tasks call back into
     the pool while holding worker slots — the caller-helps queue must
     not deadlock *)
  let out =
    Pool.map_ordered pool
      (fun i ->
        let inner = Pool.map_ordered pool (fun j -> (i * 10) + j) (Array.init 8 (fun j -> j)) in
        Array.fold_left ( + ) 0 inner)
      (Array.init 6 (fun i -> i))
  in
  let expected = Array.init 6 (fun i -> (i * 80) + 28) in
  Alcotest.(check (array int)) "nested maps" expected out

let test_sequential_path () =
  let pool = Pool.create ~jobs:1 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  Alcotest.(check int) "jobs clamped" 1 (Pool.jobs pool);
  (* jobs=1 must run in the calling domain, in order *)
  let trace = ref [] in
  let out =
    Pool.map_ordered pool
      (fun i ->
        trace := i :: !trace;
        i)
      (Array.init 8 (fun i -> i))
  in
  Alcotest.(check (list int)) "strict left-to-right" [ 7; 6; 5; 4; 3; 2; 1; 0 ] !trace;
  Alcotest.(check (array int)) "identity" (Array.init 8 (fun i -> i)) out

let test_run_all () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  let out =
    Pool.run_all pool
      [ (fun () -> "a"); (fun () -> ignore (busy 10_000); "b"); (fun () -> "c") ]
  in
  Alcotest.(check (list string)) "thunk results in order" [ "a"; "b"; "c" ] out

let suite =
  [
    Alcotest.test_case "ordering under contention" `Quick test_ordering;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "reuse and nesting" `Quick test_reuse_and_nesting;
    Alcotest.test_case "sequential path" `Quick test_sequential_path;
    Alcotest.test_case "run_all" `Quick test_run_all;
  ]
