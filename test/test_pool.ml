module Pool = Rs_util.Pool

(* Uneven per-item work so completion order differs from submission
   order under contention: map_ordered must still return results in
   input order. *)
let busy n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 7) + i
  done;
  !acc

let test_ordering () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  let input = Array.init 64 (fun i -> i) in
  let out =
    Pool.map_ordered pool
      (fun i ->
        ignore (busy (if i mod 3 = 0 then 50_000 else 100));
        i * i)
      input
  in
  Alcotest.(check (array int)) "squares in input order"
    (Array.map (fun i -> i * i) input)
    out

let test_exception_propagation () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  let input = Array.init 32 (fun i -> i) in
  (* several items fail; the lowest failing index (5) must win so the
     raised exception is deterministic *)
  let raised =
    try
      ignore
        (Pool.map_ordered pool
           (fun i ->
             ignore (busy 1_000);
             if i mod 5 = 0 && i > 0 then failwith (Printf.sprintf "boom %d" i);
             i)
           input);
      None
    with Failure msg -> Some msg
  in
  Alcotest.(check (option string)) "lowest failing index wins" (Some "boom 5") raised;
  (* a failed map must leave the pool usable *)
  let out = Pool.map_ordered pool (fun i -> i + 1) input in
  Alcotest.(check int) "pool survives a failure" 32 out.(31)

let test_reuse_and_nesting () =
  let pool = Pool.create ~jobs:3 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  (* repeated maps on one pool *)
  for round = 1 to 5 do
    let out = Pool.map_ordered pool (fun i -> i * round) (Array.init 16 (fun i -> i)) in
    Alcotest.(check int) "reuse round" (15 * round) out.(15)
  done;
  (* nested map_ordered on the same pool: the outer tasks call back into
     the pool while holding worker slots — the caller-helps queue must
     not deadlock *)
  let out =
    Pool.map_ordered pool
      (fun i ->
        let inner = Pool.map_ordered pool (fun j -> (i * 10) + j) (Array.init 8 (fun j -> j)) in
        Array.fold_left ( + ) 0 inner)
      (Array.init 6 (fun i -> i))
  in
  let expected = Array.init 6 (fun i -> (i * 80) + 28) in
  Alcotest.(check (array int)) "nested maps" expected out

let test_sequential_path () =
  let pool = Pool.create ~jobs:1 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  Alcotest.(check int) "jobs clamped" 1 (Pool.jobs pool);
  (* jobs=1 must run in the calling domain, in order *)
  let trace = ref [] in
  let out =
    Pool.map_ordered pool
      (fun i ->
        trace := i :: !trace;
        i)
      (Array.init 8 (fun i -> i))
  in
  Alcotest.(check (list int)) "strict left-to-right" [ 7; 6; 5; 4; 3; 2; 1; 0 ] !trace;
  Alcotest.(check (array int)) "identity" (Array.init 8 (fun i -> i)) out

let test_run_all () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  let out =
    Pool.run_all pool
      [ (fun () -> "a"); (fun () -> ignore (busy 10_000); "b"); (fun () -> "c") ]
  in
  Alcotest.(check (list string)) "thunk results in order" [ "a"; "b"; "c" ] out

(* A failing map re-raises only its lowest-indexed error; the rest must
   be surfaced through the pool.suppressed_failures counter instead of
   being silently discarded. *)
let test_suppressed_failures_counted () =
  let c = Rs_obs.Metrics.counter "pool.suppressed_failures" in
  let before = Rs_obs.Metrics.counter_value c in
  let pool = Pool.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  (try
     ignore
       (Pool.map_ordered pool
          (fun i -> if i mod 4 = 0 then failwith (Printf.sprintf "boom %d" i) else i)
          (Array.init 16 (fun i -> i)))
   with Failure _ -> ());
  (* failures at 0, 4, 8, 12: index 0 propagates, three are suppressed *)
  Alcotest.(check int) "suppressed failures counted" 3 (Rs_obs.Metrics.counter_value c - before)

let[@inline never] deep_raise () = failwith "from-deep-raise"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* The re-raise must carry the worker-side backtrace of the original
   failure, not the backtrace of the re-raise site inside pool.ml. *)
let test_backtrace_preserved () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect ~finally:(fun () -> Printexc.record_backtrace prev) @@ fun () ->
  let pool = Pool.create ~jobs:3 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  match
    Pool.map_ordered pool
      (fun i -> if i = 2 then deep_raise () else i)
      (Array.init 8 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected the map to raise"
  | exception Failure msg ->
    let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
    Alcotest.(check string) "original exception" "from-deep-raise" msg;
    Alcotest.(check bool)
      (Printf.sprintf "backtrace points into the raising task (got: %s)" bt)
      true
      (contains bt "test_pool" || not (Printexc.backtrace_status ()))

(* A posted fire-and-forget thunk that raises must be trapped and
   counted, not kill the worker domain that ran it. *)
let test_post_survives_raising_thunk () =
  let c = Rs_obs.Metrics.counter "pool.worker_failures" in
  let before = Rs_obs.Metrics.counter_value c in
  let pool = Pool.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
  let flag = Atomic.make false in
  Pool.post pool (fun () -> failwith "posted boom");
  Pool.post pool (fun () -> Atomic.set flag true);
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get flag)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check bool) "worker survived and ran the next thunk" true (Atomic.get flag);
  Alcotest.(check bool) "failure counted in pool.worker_failures" true
    (Rs_obs.Metrics.counter_value c - before >= 1);
  (* the pool is still fully usable for ordered maps *)
  let out = Pool.map_ordered pool (fun i -> i * 2) (Array.init 8 (fun i -> i)) in
  Alcotest.(check int) "map after posted failure" 14 out.(7)

let suite =
  [
    Alcotest.test_case "ordering under contention" `Quick test_ordering;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "reuse and nesting" `Quick test_reuse_and_nesting;
    Alcotest.test_case "sequential path" `Quick test_sequential_path;
    Alcotest.test_case "run_all" `Quick test_run_all;
    Alcotest.test_case "suppressed failures counted" `Quick test_suppressed_failures_counted;
    Alcotest.test_case "backtrace preserved" `Quick test_backtrace_preserved;
    Alcotest.test_case "post survives raising thunk" `Quick test_post_survives_raising_thunk;
  ]
