(* Property-based tests (via the Prop helper) for the counting utilities
   the observability layer depends on: saturating counters, streaming
   statistics and histograms. *)

module Sat = Rs_util.Sat_counter
module Stats = Rs_util.Running_stats
module Hist = Rs_util.Histogram

(* --- Sat_counter: bounds and monotonicity -------------------------------- *)

let gen_sat_trace =
  Prop.pair (Prop.int ~lo:1 ~hi:10_000)
    (Prop.list_of ~min_len:1 ~max_len:200 (Prop.int ~lo:(-500) ~hi:500))

let prop_sat_bounds (max, deltas) =
  let c = Sat.create ~max () in
  List.for_all
    (fun d ->
      Sat.add c d;
      Sat.value c >= 0 && Sat.value c <= max)
    deltas

let gen_sat_incrs =
  Prop.pair (Prop.int ~lo:1 ~hi:10_000)
    (Prop.list_of ~min_len:1 ~max_len:200 (Prop.int ~lo:0 ~hi:500))

let prop_sat_monotone (max, incrs) =
  let c = Sat.create ~max () in
  List.for_all
    (fun d ->
      let before = Sat.value c in
      Sat.add c d;
      Sat.value c >= before)
    incrs

(* --- Running_stats vs a naive two-pass reference -------------------------- *)

let naive_mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let naive_variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = naive_mean xs in
    Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs /. float_of_int (n - 1)
  end

let gen_samples = Prop.array_of ~min_len:1 ~max_len:300 (Prop.float_ ~lo:(-1000.0) ~hi:1000.0)

let close ?(eps = 1e-6) a b = abs_float (a -. b) <= eps *. (1.0 +. abs_float a +. abs_float b)

let prop_stats_match xs =
  let s = Stats.create () in
  Array.iter (Stats.add s) xs;
  Stats.count s = Array.length xs
  && close (Stats.mean s) (naive_mean xs)
  && close (Stats.variance s) (naive_variance xs)

(* --- Histogram: merge preserves counts ------------------------------------ *)

let gen_two_samples =
  Prop.pair
    (Prop.list_of ~max_len:300 (Prop.float_ ~lo:(-0.5) ~hi:1.5))
    (Prop.list_of ~max_len:300 (Prop.float_ ~lo:(-0.5) ~hi:1.5))

let prop_hist_merge (xs, ys) =
  let bins = 16 in
  let mk zs =
    let h = Hist.create ~bins () in
    List.iter (Hist.add h) zs;
    h
  in
  let a = mk xs and b = mk ys in
  let m = Hist.merge a b in
  Hist.count m = Hist.count a + Hist.count b
  && List.for_all
       (fun i -> Hist.bin_count m i = Hist.bin_count a i + Hist.bin_count b i)
       (List.init bins Fun.id)
  (* the inputs are untouched *)
  && Hist.count a = List.length xs
  && Hist.count b = List.length ys

let suite =
  [
    Prop.test "sat counter stays within [0, max]" gen_sat_trace prop_sat_bounds;
    Prop.test "sat counter monotone under increments" gen_sat_incrs prop_sat_monotone;
    Prop.test ~count:300 "running stats match two-pass reference" gen_samples prop_stats_match;
    Prop.test "histogram merge preserves counts" gen_two_samples prop_hist_merge;
  ]
