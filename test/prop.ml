(* A tiny property-based testing helper on top of [Rs_util.Prng].

   [check_prop] drives a seeded generator [count] times through a
   property and fails (with the case index and a printed counterexample)
   on the first falsification — deterministic by construction, so a
   failure reproduces by re-running the suite.  qcheck stays in use
   elsewhere; this helper exists for properties that want the repo's own
   PRNG and exact control over the distribution. *)

module Prng = Rs_util.Prng

type 'a gen = Prng.t -> 'a

let int ~lo ~hi : int gen =
 fun rng ->
  if hi < lo then invalid_arg "Prop.int: hi < lo";
  lo + Prng.int rng (hi - lo + 1)

let float_ ~lo ~hi : float gen = fun rng -> lo +. Prng.float rng (hi -. lo)
let bool : bool gen = Prng.bool
let pair (g1 : 'a gen) (g2 : 'b gen) : ('a * 'b) gen = fun rng -> (g1 rng, g2 rng)

let array_of ?(min_len = 0) ~max_len (g : 'a gen) : 'a array gen =
 fun rng ->
  let n = (int ~lo:min_len ~hi:max_len) rng in
  Array.init n (fun _ -> g rng)

let list_of ?(min_len = 0) ~max_len (g : 'a gen) : 'a list gen =
 fun rng -> Array.to_list ((array_of ~min_len ~max_len g) rng)

let check_prop ?(count = 200) ?(seed = 0xC0FFEE) ~name ?print gen prop =
  let rng = Prng.create seed in
  for i = 1 to count do
    let case = gen rng in
    let ok = try prop case with e -> Alcotest.failf "%s: case %d raised %s" name i
                                       (Printexc.to_string e)
    in
    if not ok then
      match print with
      | Some p -> Alcotest.failf "%s: falsified on case %d: %s" name i (p case)
      | None -> Alcotest.failf "%s: falsified on case %d" name i
  done

let test ?count ?seed ?print name gen prop =
  Alcotest.test_case name `Quick (fun () -> check_prop ?count ?seed ~name ?print gen prop)
