(* Registry invariants (see registry.mli): the static shape of the
   registry — unique well-formed names, unique CSV filenames, sane glob
   selection — plus, at a small scale, that every entry executes, renders
   non-empty text and produces sheet rows matching its declared schema in
   arity and kind.

   The execution context matches test_golden's (seed=7, scale=0.02,
   tau=10, jobs=1) on purpose: this suite runs first and warms the
   process-global artifact cache, so the golden suite's re-runs mostly
   replay cached simulations. *)

module E = Rs_experiments
module R = Rs_experiments.Registry

let ctx = lazy (E.Context.create ~seed:7 ~scale:0.02 ~tau:10 ~jobs:1 ())

let names = List.map R.name R.all

let test_unique_names () =
  Alcotest.(check int) "18 paper artifacts + 3 adversarial entries" 21 (List.length R.all);
  Alcotest.(check int)
    "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let name_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_'

let test_name_charset () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%S well-formed" n)
        true
        (n <> "" && String.for_all name_char n))
    names

let sheet_names (R.Entry s) = List.map (fun (sh : _ R.sheet) -> sh.sheet) s.sheets

let test_unique_csv_filenames () =
  let files =
    List.concat_map
      (fun e -> List.map (fun sh -> R.name e ^ "_" ^ sh ^ ".csv") (sheet_names e))
      R.all
  in
  Alcotest.(check int)
    "csv filenames unique across the registry" (List.length files)
    (List.length (List.sort_uniq compare files))

let test_find () =
  List.iter
    (fun n ->
      match R.find n with
      | Some e -> Alcotest.(check string) "find round-trips" n (R.name e)
      | None -> Alcotest.failf "find %S returned nothing" n)
    names;
  Alcotest.(check bool) "find unknown" true (R.find "nonesuch" = None)

let test_glob () =
  let m p s = R.glob_matches ~pattern:p s in
  Alcotest.(check bool) "literal" true (m "figure2" "figure2");
  Alcotest.(check bool) "literal mismatch" false (m "figure2" "figure3");
  Alcotest.(check bool) "star prefix" true (m "table*" "table5");
  Alcotest.(check bool) "star alone" true (m "*" "anything");
  Alcotest.(check bool) "star infix" true (m "f*9" "figure9");
  Alcotest.(check bool) "question" true (m "figure?" "figure8");
  Alcotest.(check bool) "question needs a char" false (m "figure?" "figure");
  Alcotest.(check bool) "no partial match" false (m "figure" "figure2")

let test_select () =
  (match R.select [] with
  | Ok es -> Alcotest.(check int) "empty selects all" (List.length R.all) (List.length es)
  | Error e -> Alcotest.fail e);
  (match R.select [ "table*" ] with
  | Ok es ->
    Alcotest.(check (list string))
      "tables in registry order"
      [ "table1"; "table2"; "table3"; "table4"; "table5" ]
      (List.map R.name es)
  | Error e -> Alcotest.fail e);
  (match R.select [ "figure2"; "fig*" ] with
  | Ok es ->
    Alcotest.(check bool)
      "overlapping patterns collapse duplicates" true
      (List.length es = List.length (List.sort_uniq compare (List.map R.name es)))
  | Error e -> Alcotest.fail e);
  (match R.select [ "figure2"; "bogus*" ] with
  | Ok _ -> Alcotest.fail "unmatched pattern must be an error"
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "error names the pattern" true (contains msg "bogus"));
  (* regression lock-in: the exact message `rspec run` prints (prefixed
     "rspec: ") before exiting non-zero on an unmatched glob *)
  match R.select [ "no_such_entry*" ] with
  | Ok _ -> Alcotest.fail "unmatched glob must be an error"
  | Error msg ->
    Alcotest.(check string)
      "exact unmatched-glob message"
      "no experiment matches \"no_such_entry*\" (see `rspec list`)" msg

(* The three adversarial entries each publish a claims-style verdicts
   sheet; hold every such sheet to the one schema so downstream
   consumers can union them. *)
let test_verdict_sheet_schema () =
  let with_verdicts =
    List.filter (fun e -> List.mem "verdicts" (sheet_names e)) R.all
  in
  Alcotest.(check bool)
    "claims + the three adversarial entries publish verdicts" true
    (List.length with_verdicts >= 4);
  List.iter
    (fun (R.Entry s as e) ->
      List.iter
        (fun (sh : _ R.sheet) ->
          if sh.sheet = "verdicts" then
            Alcotest.(check (list string))
              (R.name e ^ " verdict sheet schema")
              [ "claim"; "measured"; "pass" ]
              (List.map (fun (c : R.column) -> c.col) sh.columns))
        s.sheets)
    with_verdicts

let kind_matches (k : R.kind) (v : R.value) =
  match (k, v) with
  | _, R.Null -> true
  | R.Str, R.S _ | R.Int, R.I _ | R.Float, R.F _ | R.Bool, R.B _ -> true
  | _ -> false

let check_output entry (out : R.output) =
  let n = R.name entry in
  Alcotest.(check bool) (n ^ " renders non-empty") true (String.length out.text > 0);
  List.iter
    (fun (sheet, columns, rows) ->
      Alcotest.(check bool) (Printf.sprintf "%s/%s has columns" n sheet) true (columns <> []);
      List.iteri
        (fun i row ->
          Alcotest.(check int)
            (Printf.sprintf "%s/%s row %d arity" n sheet i)
            (List.length columns) (List.length row);
          List.iter2
            (fun (c : R.column) v ->
              if not (kind_matches c.kind v) then
                Alcotest.failf "%s/%s row %d column %s: value does not match kind %s" n sheet
                  i c.col
                  (match c.kind with
                  | R.Str -> "string"
                  | R.Int -> "int"
                  | R.Float -> "float"
                  | R.Bool -> "bool"))
            columns row)
        rows)
    out.tables

let test_execute_entry entry () =
  let out = R.execute (Lazy.force ctx) entry in
  check_output entry out;
  Alcotest.(check bool)
    ("experiment.runs." ^ R.name entry ^ " bumped")
    true
    (Rs_obs.Metrics.counter_value (Rs_obs.Metrics.counter ("experiment.runs." ^ R.name entry))
    >= 1)

let suite =
  [
    Alcotest.test_case "names unique" `Quick test_unique_names;
    Alcotest.test_case "names well-formed" `Quick test_name_charset;
    Alcotest.test_case "csv filenames unique" `Quick test_unique_csv_filenames;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "glob" `Quick test_glob;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "verdict sheet schema" `Quick test_verdict_sheet_schema;
  ]
  @ List.map
      (fun e -> Alcotest.test_case (R.name e ^ " schema") `Slow (test_execute_entry e))
      R.all
