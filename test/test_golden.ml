(* Golden-snapshot regression tests.

   Every registry entry runs at a small fixed (seed=7, scale=0.02,
   tau=10) and its full rendered output is diffed byte-for-byte against
   the checked-in snapshots in test/golden/.  Any change to the controller,
   the workloads, the simulator or the table renderer that shifts a
   single digit fails here with a unified diff.

   Regenerating after an intentional change:

     RS_UPDATE_GOLDEN=1 dune runtest --force

   rewrites the snapshot files in the source tree (test/golden/), after
   which the diff in `git diff` is the reviewable change.  The tests
   pass vacuously in update mode. *)

module E = Rs_experiments

let ctx () = E.Context.create ~seed:7 ~scale:0.02 ~tau:10 ~jobs:1 ()

(* `dune runtest` executes the binary in _build/default/test (snapshots
   dep-copied to golden/); `dune exec test/main.exe` runs from the
   project root (test/golden); the source copies sit three levels above
   the _build test dir.  Probe all three so both invocations work, and
   in update mode rewrite every reachable copy — the _build one keeps
   this run green, the source one is the actual regeneration. *)
let candidate_dirs =
  [ "golden"; Filename.concat "test" "golden"; "../../../test/golden" ]

let existing_dirs () =
  List.filter (fun d -> Sys.file_exists d && Sys.is_directory d) candidate_dirs

let update_mode = Sys.getenv_opt "RS_UPDATE_GOLDEN" = Some "1"

let snapshot_path name =
  match existing_dirs () with
  | dir :: _ -> Filename.concat dir name
  | [] -> Alcotest.failf "no golden snapshot directory found (cwd %s)" (Sys.getcwd ())

let write_snapshot name content =
  match existing_dirs () with
  | [] -> Alcotest.failf "no golden snapshot directory found (cwd %s)" (Sys.getcwd ())
  | dirs ->
    List.iter
      (fun dir ->
        let path = Filename.concat dir name in
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        Printf.printf "updated %s\n%!" path)
      dirs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let show_diff expected actual =
  let el = String.split_on_char '\n' expected and al = String.split_on_char '\n' actual in
  let buf = Buffer.create 256 in
  let rec go i el al =
    match (el, al) with
    | [], [] -> ()
    | e :: er, a :: ar ->
      if e <> a then Buffer.add_string buf (Printf.sprintf "line %d:\n  -%s\n  +%s\n" i e a);
      go (i + 1) er ar
    | e :: er, [] ->
      Buffer.add_string buf (Printf.sprintf "line %d missing:\n  -%s\n" i e);
      go (i + 1) er []
    | [], a :: ar ->
      Buffer.add_string buf (Printf.sprintf "line %d extra:\n  +%s\n" i a);
      go (i + 1) [] ar
  in
  go 1 el al;
  Buffer.contents buf

let check_golden name content =
  if update_mode then write_snapshot name content
  else begin
    let path = snapshot_path name in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing snapshot %s (regenerate with RS_UPDATE_GOLDEN=1)" path;
    let expected = read_file path in
    if expected <> content then
      Alcotest.failf "%s drifted from its snapshot:\n%s(regenerate with RS_UPDATE_GOLDEN=1)"
        name (show_diff expected content)
  end

(* One test per registry entry; the context is shared so the
   process-global artifact cache works across entries exactly as it does
   under `rspec all`. *)
let shared_ctx = lazy (ctx ())

let test_entry entry () =
  check_golden
    (E.Registry.name entry ^ ".txt")
    (E.Registry.execute (Lazy.force shared_ctx) entry).text

(* The IR pretty-printers are part of every experiment's rendered output,
   so their exact spelling is pinned too: a hand-written two-function
   program covering every instruction form and every terminator, printed
   through Program.pp (which goes through Func.pp and Instr.pp). *)
let pp_fixture =
  let open Rs_ir in
  let main =
    {
      Func.name = "main";
      entry = 0;
      nregs = 6;
      blocks =
        [|
          {
            Func.body =
              [|
                Instr.Li (0, 7);
                Instr.Mov (1, 0);
                Instr.Binop (Add, 2, 0, 1);
                Instr.Binop (Mul, 2, 2, 2);
                Instr.Binop (Xor, 3, 2, 0);
                Instr.Binop (Shl, 3, 3, 1);
                Instr.Addi (4, 3, -5);
                Instr.Cmp (Lt, 5, 4, 2);
                Instr.Cmpi (Ge, 5, 4, 100);
                Instr.Load (1, 0, 4);
                Instr.Store (0, 1, 8);
              |];
            term = Func.Branch { cond = 5; site = 3; taken = 1; not_taken = 2 };
          };
          {
            Func.body = [||];
            term = Func.Call { callee = 1; args = [ 2; 4 ]; ret = Some 0; next = 3 };
          };
          { Func.body = [||]; term = Func.TailCall { callee = 1; args = [ 4; 2 ] } };
          { Func.body = [||]; term = Func.Jump 4 };
          { Func.body = [||]; term = Func.Ret (Some 0) };
        |];
    }
  in
  let max2 =
    {
      Func.name = "max2";
      entry = 0;
      nregs = 3;
      blocks =
        [|
          {
            Func.body = [| Instr.Cmp (Gt, 2, 0, 1) |];
            term = Func.Branch { cond = 2; site = 9; taken = 1; not_taken = 2 };
          };
          { Func.body = [||]; term = Func.Ret (Some 0) };
          { Func.body = [||]; term = Func.Ret (Some 1) };
        |];
    }
  in
  { Program.name = "pp_fixture"; funcs = [| main; max2 |]; entry = 0 }

let test_ir_pp () =
  check_golden "ir_pp.txt" (Format.asprintf "%a" Rs_ir.Program.pp pp_fixture)

let suite =
  List.map
    (fun e -> Alcotest.test_case (E.Registry.name e ^ " golden") `Slow (test_entry e))
    E.Registry.all
  @ [ Alcotest.test_case "ir pretty-printer golden" `Quick test_ir_pp ]
