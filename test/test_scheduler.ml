(* The work-stealing scheduler: deque semantics, splittable map_range,
   jobs-independence under random nesting, speculative execution with
   commit/rollback of buffered side effects, and the post/close drain
   guarantee. *)

module Pool = Rs_util.Pool
module Deque = Rs_util.Deque
module Metrics = Rs_obs.Metrics
module Fault = Rs_fault.Fault
module E = Rs_experiments

let busy n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 7) + i
  done;
  !acc

let with_pool ?(jobs = 4) f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () -> f pool

(* --- deque ----------------------------------------------------------------- *)

let test_deque_ends () =
  let d = Deque.create () in
  Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal d);
  (* past the initial capacity, so growth is exercised *)
  for i = 1 to 20 do
    Deque.push d i
  done;
  Alcotest.(check int) "length" 20 (Deque.length d);
  Alcotest.(check (option int)) "owner pops newest (LIFO)" (Some 20) (Deque.pop d);
  Alcotest.(check (option int)) "thief steals oldest (FIFO)" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "next steal" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "next pop" (Some 19) (Deque.pop d);
  let rec drain acc = match Deque.pop d with Some v -> drain (v :: acc) | None -> acc in
  Alcotest.(check (list int)) "drain by pop returns the middle, oldest first"
    (List.init 16 (fun i -> i + 3))
    (drain [])

(* Stealing advances the ring's head; pushing afterwards must wrap
   around the buffer rather than overwrite live cells. *)
let test_deque_wraparound () =
  let d = Deque.create () in
  for i = 1 to 6 do
    Deque.push d i
  done;
  for _ = 1 to 4 do
    ignore (Deque.steal d)
  done;
  for i = 7 to 12 do
    Deque.push d i
  done;
  let rec drain acc = match Deque.steal d with Some v -> drain (v :: acc) | None -> acc in
  Alcotest.(check (list int)) "wrapped contents survive, FIFO"
    [ 5; 6; 7; 8; 9; 10; 11; 12 ]
    (List.rev (drain []))

(* --- map_range ------------------------------------------------------------- *)

let test_map_range_basics () =
  with_pool @@ fun pool ->
  Alcotest.(check (array int)) "empty range" [||] (Pool.map_range pool ~lo:3 ~hi:3 Fun.id);
  Alcotest.(check (array int)) "offset range" [| 9; 16; 25 |]
    (Pool.map_range pool ~lo:3 ~hi:6 (fun i -> i * i));
  (* a coarse cutoff changes scheduling, never results *)
  let expect = Array.init 100 (fun i -> i * 3) in
  Alcotest.(check (array int)) "cutoff 16"
    expect
    (Pool.map_range pool ~cutoff:16 ~lo:0 ~hi:100 (fun i -> i * 3));
  let sum = ref 0 in
  Pool.parallel_for pool ~lo:0 ~hi:50 (fun i -> ignore (busy 100); ignore i);
  ignore !sum

let test_map_range_splits_and_steals () =
  let splits_before = (Pool.stats ()).splits in
  let steals_before = (Pool.stats ()).steals in
  with_pool ~jobs:4 @@ fun pool ->
  (* enough uneven work that idle workers provably steal *)
  let out =
    Pool.map_range pool ~lo:0 ~hi:64 (fun i ->
        ignore (busy (if i mod 7 = 0 then 400_000 else 2_000));
        i)
  in
  Alcotest.(check (array int)) "results in order" (Array.init 64 Fun.id) out;
  Alcotest.(check bool) "range was split" true ((Pool.stats ()).splits > splits_before);
  Alcotest.(check bool) "workers stole sub-ranges" true ((Pool.stats ()).steals > steals_before)

let test_map_range_jobs1_strict_order () =
  with_pool ~jobs:1 @@ fun pool ->
  let trace = ref [] in
  let out =
    Pool.map_range pool ~lo:2 ~hi:10 (fun i ->
        trace := i :: !trace;
        i)
  in
  Alcotest.(check (list int)) "strict left-to-right" [ 9; 8; 7; 6; 5; 4; 3; 2 ] !trace;
  Alcotest.(check (array int)) "values" (Array.init 8 (fun i -> i + 2)) out

(* Random nesting depths and uneven durations: results must not depend
   on jobs.  Uses the repo PRNG so failures replay deterministically. *)
let nested_identity_prop (seed, n, depth, width) =
  let rec go pool ~seed ~depth i =
    let h = (seed * 1_000_003) + (i * 8191) + depth land 0xffffff in
    ignore (busy (h land 0x1ff));
    if depth = 0 then h land 0xffff
    else
      let inner =
        Pool.map_range pool ~lo:0 ~hi:width (fun j -> go pool ~seed:(h + j) ~depth:(depth - 1) j)
      in
      Array.fold_left ( + ) (h land 0xffff) inner
  in
  let run jobs =
    let pool = Pool.create ~jobs () in
    Fun.protect ~finally:(fun () -> Pool.close pool) @@ fun () ->
    Pool.map_range pool ~lo:0 ~hi:n (fun i -> go pool ~seed ~depth i)
  in
  run 1 = run 8

let nested_identity_test =
  Prop.test ~count:10 "nested map_range is jobs-independent"
    ~print:(fun (s, n, d, w) -> Printf.sprintf "seed=%d n=%d depth=%d width=%d" s n d w)
    (fun rng ->
      ( Prop.int ~lo:0 ~hi:1_000_000 rng,
        Prop.int ~lo:0 ~hi:9 rng,
        Prop.int ~lo:0 ~hi:2 rng,
        Prop.int ~lo:1 ~hi:5 rng ))
    nested_identity_prop

(* --- speculation ----------------------------------------------------------- *)

let spec_counter = Metrics.counter "test.scheduler_spec"

let await flag =
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (not (Atomic.get flag)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  Alcotest.(check bool) "speculative task ran" true (Atomic.get flag)

let test_spec_commit_merges () =
  with_pool @@ fun pool ->
  let before = Metrics.counter_value spec_counter in
  let s =
    Pool.spec_spawn pool (fun () ->
        Metrics.incr spec_counter;
        41)
  in
  Alcotest.(check int) "commit returns the result" 41 (Pool.spec_commit pool s);
  Alcotest.(check int) "buffered increment applied on commit" (before + 1)
    (Metrics.counter_value spec_counter)

let test_spec_cancel_discards () =
  with_pool @@ fun pool ->
  let before = Metrics.counter_value spec_counter in
  let ran = Atomic.make false in
  let s =
    Pool.spec_spawn pool (fun () ->
        Metrics.incr spec_counter;
        Atomic.set ran true)
  in
  await ran;
  Pool.spec_cancel pool s;
  Pool.spec_cancel pool s (* idempotent *);
  Alcotest.(check int) "cancelled task leaked no metrics" before
    (Metrics.counter_value spec_counter);
  match Pool.spec_commit pool s with
  | _ -> Alcotest.fail "committing a cancelled task must be rejected"
  | exception Invalid_argument _ -> ()

let test_spec_cancel_pending_never_runs () =
  with_pool ~jobs:1 @@ fun pool ->
  (* jobs=1 defers the spawn, so cancel wins before any execution *)
  let ran = ref false in
  let s = Pool.spec_spawn pool (fun () -> ran := true) in
  Pool.spec_cancel pool s;
  Alcotest.(check bool) "pending task never ran" false !ran

let test_spec_jobs1_inline () =
  with_pool ~jobs:1 @@ fun pool ->
  let before = Metrics.counter_value spec_counter in
  let order = ref [] in
  let s =
    Pool.spec_spawn pool (fun () ->
        order := "arm" :: !order;
        Metrics.incr spec_counter;
        7)
  in
  order := "pre-commit" :: !order;
  Alcotest.(check int) "deferred arm runs inline at commit" 7 (Pool.spec_commit pool s);
  Alcotest.(check (list string)) "sequential order" [ "arm"; "pre-commit" ] !order;
  Alcotest.(check int) "inline run records directly" (before + 1)
    (Metrics.counter_value spec_counter)

let test_spec_exception_rethrown () =
  with_pool @@ fun pool ->
  let s = Pool.spec_spawn pool (fun () -> failwith "spec boom") in
  (match Pool.spec_commit pool s with
  | _ -> Alcotest.fail "expected the arm's exception"
  | exception Failure msg -> Alcotest.(check string) "original exception" "spec boom" msg);
  (* a failed arm can also be cancelled instead: effects drop silently *)
  let s2 = Pool.spec_spawn pool (fun () -> failwith "spec boom 2") in
  Pool.spec_cancel pool s2

(* A committed arm publishes its cache writes; a cancelled arm's writes
   roll back and the global table recomputes. *)
let test_spec_cache_rollback () =
  E.Cache.reset ();
  let m = E.Cache.Private.memo "test-spec-txn" in
  with_pool @@ fun pool ->
  let compute_committed = Atomic.make false and compute_cancelled = Atomic.make false in
  let win =
    Pool.spec_spawn pool (fun () ->
        let v = E.Cache.Private.find_or_compute m ~bench:"t" "win" (fun () -> 5) in
        Atomic.set compute_committed true;
        v)
  in
  let lose =
    Pool.spec_spawn pool (fun () ->
        ignore (E.Cache.Private.find_or_compute m ~bench:"t" "lose" (fun () -> 6));
        Atomic.set compute_cancelled true)
  in
  await compute_committed;
  await compute_cancelled;
  Pool.spec_cancel pool lose;
  Alcotest.(check int) "winner's value" 5 (Pool.spec_commit pool win);
  Alcotest.(check int) "committed write published (no recompute)" 5
    (E.Cache.Private.find_or_compute m ~bench:"t" "win" (fun () -> 99));
  Alcotest.(check int) "cancelled write rolled back (recomputes)" 7
    (E.Cache.Private.find_or_compute m ~bench:"t" "lose" (fun () -> 7));
  E.Cache.reset ()

(* Chaos: injected faults at the scheduler's sites while speculation
   churns.  Worker-start faults kill helpers (the caller still completes
   everything); task faults abort whole maps.  Through all of it the
   global counter must see exactly the committed arms — a cancelled
   arm's buffered effects never leak, fault or no fault. *)
let test_spec_chaos_never_leaks () =
  (match Fault.configure_spec "seed=13,rate=0.35,sites=pool.worker_start:pool.task" with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bad fault spec: %s" msg);
  Fun.protect ~finally:Fault.disable @@ fun () ->
  with_pool ~jobs:4 @@ fun pool ->
  let before = Metrics.counter_value spec_counter in
  let committed = ref 0 in
  for round = 1 to 20 do
    let arm k =
      Pool.spec_spawn pool (fun () ->
          ignore (busy (200 * k));
          Metrics.incr spec_counter)
    in
    let a = arm round and b = arm (round + 1) in
    (* interleave a map so pool.task faults fire mid-flight *)
    (try ignore (Pool.map_ordered pool (fun i -> i * i) (Array.init 8 Fun.id))
     with Fault.Injected _ -> ());
    let keep, drop = if round mod 2 = 0 then (a, b) else (b, a) in
    Pool.spec_cancel pool drop;
    Pool.spec_commit pool keep;
    incr committed
  done;
  Alcotest.(check int) "exactly the committed arms landed" (before + !committed)
    (Metrics.counter_value spec_counter)

(* --- post / close drain ---------------------------------------------------- *)

let test_jobs1_post_drained_at_close () =
  let pool = Pool.create ~jobs:1 () in
  let hits = ref [] in
  Pool.post pool (fun () -> hits := 1 :: !hits);
  Pool.post pool (fun () -> hits := 2 :: !hits);
  (* no worker domains: nothing may run until the close drain *)
  Alcotest.(check (list int)) "not yet run" [] !hits;
  Pool.close pool;
  Alcotest.(check (list int)) "drained in submission order at close" [ 1; 2 ] (List.rev !hits)

let suite =
  [
    Alcotest.test_case "deque ends" `Quick test_deque_ends;
    Alcotest.test_case "deque wraparound" `Quick test_deque_wraparound;
    Alcotest.test_case "map_range basics" `Quick test_map_range_basics;
    Alcotest.test_case "map_range splits and steals" `Quick test_map_range_splits_and_steals;
    Alcotest.test_case "map_range jobs=1 strict order" `Quick test_map_range_jobs1_strict_order;
    nested_identity_test;
    Alcotest.test_case "spec commit merges" `Quick test_spec_commit_merges;
    Alcotest.test_case "spec cancel discards" `Quick test_spec_cancel_discards;
    Alcotest.test_case "spec cancel pending never runs" `Quick test_spec_cancel_pending_never_runs;
    Alcotest.test_case "spec jobs=1 inline" `Quick test_spec_jobs1_inline;
    Alcotest.test_case "spec exception rethrown" `Quick test_spec_exception_rethrown;
    Alcotest.test_case "spec cache rollback" `Quick test_spec_cache_rollback;
    Alcotest.test_case "spec chaos never leaks" `Quick test_spec_chaos_never_leaks;
    Alcotest.test_case "jobs=1 post drained at close" `Quick test_jobs1_post_drained_at_close;
  ]
