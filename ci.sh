#!/usr/bin/env bash
# Tier-1 verification in one command: format check, build, test suite.
#
#   ./ci.sh          # everything
#   ./ci.sh --quick  # skip the format check
#
# The format check runs `dune build @fmt`, which needs the ocamlformat
# binary for OCaml sources; where it is not installed (e.g. minimal
# containers) the check is skipped with a notice rather than failing —
# the build and tests are the gate that must always pass.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" != "--quick" ]]; then
  if command -v ocamlformat >/dev/null 2>&1; then
    echo "== format check (dune build @fmt) =="
    if ! dune build @fmt; then
      echo "formatting differs: run 'dune fmt' and commit the result" >&2
      exit 1
    fi
  else
    echo "== format check skipped (ocamlformat not installed) =="
  fi
fi

echo "== build (dune build) =="
dune build

echo "== tests (dune runtest) =="
dune runtest

echo "== ci ok =="
