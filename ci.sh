#!/usr/bin/env bash
# Tier-1 verification in one command: format check, build, test suite.
#
#   ./ci.sh          # everything
#   ./ci.sh --quick  # skip the format check
#
# The format check runs `dune build @fmt`, which needs the ocamlformat
# binary for OCaml sources; where it is not installed (e.g. minimal
# containers) the check is skipped with a notice rather than failing —
# the build and tests are the gate that must always pass.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" != "--quick" ]]; then
  if command -v ocamlformat >/dev/null 2>&1; then
    echo "== format check (dune build @fmt) =="
    if ! dune build @fmt; then
      echo "formatting differs: run 'dune fmt' and commit the result" >&2
      exit 1
    fi
  else
    echo "== format check skipped (ocamlformat not installed) =="
  fi
fi

echo "== build (dune build) =="
dune build

echo "== tests (dune runtest) =="
dune runtest

# The fault stress suite re-runs the figure2/table3 pipeline at --jobs 4
# under deterministic injected faults (raises in the cache compute
# bodies, delays in the pool) and asserts byte-identical output once the
# bounded retries succeed.  Two seeds exercise two failure schedules;
# any hang is caught by the timeout.
echo "== fault stress (RS_FAULTS, two seeds) =="
dune build test/main.exe
for seed in 1 7; do
  echo "-- seed=$seed --"
  RS_FAULTS="seed=$seed,rate=0.8,max_raises=2,sites=cache,delay=0.2,delay_us=300,delay_sites=pool" \
    timeout 600 ./_build/default/test/main.exe test fault
done

# Same stress with the trace store's recording site also failing: the
# pipeline records streams once and replays them, so a fault inside
# trace_store.record must be retried away without changing a byte.
# max_raises is a PER-SITE budget and a cache compute body now consults
# two sites (cache.* plus trace_store.record), so the worst case is
# max_raises * 2 raises against 3 attempts: max_raises=1 keeps the
# retries-always-succeed guarantee that byte-identity rests on.
echo "== fault stress (trace_store.record site) =="
RS_FAULTS="seed=3,rate=0.8,max_raises=1,sites=cache:trace_store,delay=0.2,delay_us=300,delay_sites=pool" \
  timeout 600 ./_build/default/test/main.exe test fault

# Registry stage: the CLI, docs and test snapshots must agree on the
# experiment registry.  `rspec list` is diffed against the generated
# index in EXPERIMENTS.md, every listed experiment must have a golden
# snapshot under test/golden/, and a JSON export of the cheap entries
# must validate under jq (schema arity: every row as long as its
# column list).
echo "== registry (list / golden coverage / json smoke) =="
dune build bin/main.exe
RSPEC=./_build/default/bin/main.exe
RSPEC_LIST=$(mktemp /tmp/rs_rspec_list.XXXXXX)
"$RSPEC" list > "$RSPEC_LIST"
awk '/<!-- BEGIN rspec list -->/{f=1;next}/<!-- END rspec list -->/{f=0}f' EXPERIMENTS.md \
  | sed '/^```/d' > "$RSPEC_LIST.doc"
if ! diff -u "$RSPEC_LIST.doc" "$RSPEC_LIST"; then
  echo "EXPERIMENTS.md experiment index is stale: paste \`rspec list\` output between the markers" >&2
  exit 1
fi
while read -r name _; do
  if [[ ! -f "test/golden/$name.txt" ]]; then
    echo "missing golden snapshot test/golden/$name.txt (RS_UPDATE_GOLDEN=1 dune runtest --force)" >&2
    exit 1
  fi
done < "$RSPEC_LIST"
RSPEC_JSON=$(mktemp /tmp/rs_rspec_smoke.XXXXXX.json)
timeout 600 "$RSPEC" run table1 table2 table5 figure1 \
  --format json --scale 0.02 --tau 10 --jobs 1 > "$RSPEC_JSON"
if command -v jq >/dev/null 2>&1; then
  jq -e '.experiments | length == 4' "$RSPEC_JSON" >/dev/null
  jq -e '[.experiments[].tables[] | (.columns | length) as $n | .rows[] | length == $n] | all' \
    "$RSPEC_JSON" >/dev/null
  echo "registry json ok: $(jq -c '.context' "$RSPEC_JSON")"
else
  echo "registry json written ($RSPEC_JSON); jq not installed, skipping assertions"
fi
rm -f "$RSPEC_JSON" "$RSPEC_LIST" "$RSPEC_LIST.doc"

# Distillation stage: the figure1 entry's interprocedural companion —
# a seed-derived multi-function program distilled under branch
# assumptions — must show the whole pipeline doing real work at two
# seeds: at least one call inlined along the speculated path, a
# non-empty cold region with entry stubs, and a differential check in
# which every assumption-consistent trial agrees and every
# assumption-violating trial is detected (check_ok).
echo "== distill (interprocedural differential checker, two seeds) =="
for seed in 5 19; do
  DIST_JSON=$(mktemp /tmp/rs_distill.XXXXXX.json)
  timeout 600 "$RSPEC" run figure1 \
    --format json --seed "$seed" --scale 0.02 --tau 10 --jobs 1 > "$DIST_JSON"
  if command -v jq >/dev/null 2>&1; then
    jq -e '.experiments[0].tables.program.rows[0] as $r
           | ($r[0] >= 2)            # functions
           and ($r[2] <= $r[1])      # distilled_size <= original_size
           and ($r[3] >= 1)          # inlined_calls
           and ($r[5] >= 1)          # cold_blocks
           and ($r[6] >= 1)          # cold_entries
           and ($r[7] == $r[8] + $r[9])  # trials = consistent + violated
           and ($r[9] >= 1)          # violations exercised
           and ($r[10] == $r[9])     # every violation detected
           and ($r[11] == true)      # check_ok
          ' "$DIST_JSON" >/dev/null \
      || { echo "distill stage failed at seed=$seed:" >&2
           jq '.experiments[0].tables.program' "$DIST_JSON" >&2
           exit 1; }
    echo "distill ok at seed=$seed: $(jq -c '.experiments[0].tables.program.rows[0]' "$DIST_JSON")"
  else
    echo "distill json written ($DIST_JSON); jq not installed, skipping assertions"
  fi
  rm -f "$DIST_JSON"
done

# Adversarial stage: the three adversarial entries (params-aware worst
# cases, mistraining schedules, multi-context interleavings) run end to
# end at two seeds under injected faults — including the
# trace_store.record site, since these entries fabricate and cache
# packed traces — and every published verdict row must pass.  One of
# those verdicts, plus the trailing differential_ok column of every
# rows sheet, is the differential check that the packed batch path
# agrees with scalar replay on the adversarial traces.
echo "== adversarial stress (two seeds, RS_FAULTS) =="
for seed in 7 42; do
  echo "-- seed=$seed --"
  ADV_JSON=$(mktemp /tmp/rs_adversarial.XXXXXX.json)
  RS_FAULTS="seed=$seed,rate=0.8,max_raises=1,sites=cache:trace_store,delay=0.2,delay_us=300,delay_sites=pool" \
    timeout 600 "$RSPEC" run adversarial mistrain interleave \
      --format json --seed "$seed" --scale 0.02 --tau 10 --jobs 1 > "$ADV_JSON"
  if command -v jq >/dev/null 2>&1; then
    jq -e '.experiments | length == 3' "$ADV_JSON" >/dev/null
    jq -e '[.experiments[].tables.verdicts.rows[]] | length >= 13 and all(.[2] == true)' \
      "$ADV_JSON" >/dev/null \
      || { echo "adversarial verdicts failed at seed=$seed:" >&2
           jq '[.experiments[]
                | { name, failed: [.tables.verdicts.rows[] | select(.[2] != true) | .[0]] }
                | select(.failed != [])]' "$ADV_JSON" >&2
           exit 1; }
    jq -e '[.experiments[].tables.rows.rows[] | last] | all(. == true)' "$ADV_JSON" >/dev/null \
      || { echo "batched/scalar differential diverged at seed=$seed" >&2; exit 1; }
    echo "adversarial ok at seed=$seed: $(jq -c '[.experiments[].name]' "$ADV_JSON")"
  else
    echo "adversarial json written ($ADV_JSON); jq not installed, skipping assertions"
  fi
  rm -f "$ADV_JSON"
done
# Glob selection over the new family, and the unmatched-glob failure
# mode: a pattern that selects nothing must exit non-zero and name the
# pattern, not silently run an empty set.
ADV_JSON=$(mktemp /tmp/rs_adversarial_glob.XXXXXX.json)
timeout 600 "$RSPEC" run 'adversarial*' --format json --scale 0.02 --tau 10 --jobs 1 > "$ADV_JSON"
if command -v jq >/dev/null 2>&1; then
  jq -e '.experiments | length == 1 and .[0].name == "adversarial"' "$ADV_JSON" >/dev/null
fi
rm -f "$ADV_JSON"
if "$RSPEC" run 'no_such_entry*' --format json >/dev/null 2>/tmp/rs_noglob.err; then
  echo "rspec run with an unmatched glob must fail" >&2
  exit 1
fi
grep -q 'no_such_entry' /tmp/rs_noglob.err \
  || { echo "unmatched-glob error must name the pattern:" >&2
       cat /tmp/rs_noglob.err >&2
       exit 1; }
rm -f /tmp/rs_noglob.err

# Bench smoke: the JSON mode at a tiny sampling quota and context.
# Asserts the harness runs, the JSON parses, every kernel (including the
# trace-replay pair) reported — and, the one performance property cheap
# enough to gate on, that the zero-allocation kernels stay (near-)free
# of minor-heap allocation: timing is machine-dependent, an OLS
# words-per-run fit is not.
echo "== bench smoke (--json) =="
dune build bench/main.exe
BENCH_JSON=$(mktemp /tmp/rs_bench_smoke.XXXXXX.json)
RS_BENCH_QUOTA=0.02 RS_SCALE=0.01 \
  timeout 600 ./_build/default/bench/main.exe --json "$BENCH_JSON"
if command -v jq >/dev/null 2>&1; then
  jq -e '.kernels | length >= 16' "$BENCH_JSON" >/dev/null
  jq -e '.kernels | map(.name) | (index("substrate/trace-replay") != null) and
         (index("substrate/stream-generation") != null)' "$BENCH_JSON" >/dev/null
  jq -e '.experiments[0].identical_output == true' "$BENCH_JSON" >/dev/null
  ZERO_ALLOC_KERNELS='["table1+2/workload-build","substrate/trace-replay",
    "runner/pool-map","runner/cached-profile","runner/parallel-all",
    "figure2/profile-pass","figure2/pareto-curve","figure3+9/bias-tracks",
    "figure5+table3+4/reactive-run","figure5+table3+4/reactive-run-replay",
    "figure6/eviction-watch"]'
  jq -e --argjson names "$ZERO_ALLOC_KERNELS" '
      [.kernels[] | select(.name as $n | $names | index($n) != null)
       | .minor_words_per_run]
      | (length == ($names | length)) and all(. != null and . <= 1000)' \
    "$BENCH_JSON" >/dev/null \
    || { echo "zero-alloc gate failed: a kernel reports > 1000 minor words/run" >&2
         jq --argjson names "$ZERO_ALLOC_KERNELS" \
           '[.kernels[] | select(.name as $n | $names | index($n) != null)]' "$BENCH_JSON" >&2
         exit 1; }
  # Scheduler counters: a jobs-8 figure5 sweep ran inside the harness, so
  # the work-stealing pool must have stolen sub-ranges, and the
  # speculation counters must be reported (the spec-cancel kernel
  # guarantees cancellations).  The jobs-8 output must be byte-identical
  # to jobs-1; the >= 2x wall-clock gate only applies with enough cores
  # to parallelize on.
  jq -e '.pool.steals > 0' "$BENCH_JSON" >/dev/null \
    || { echo "scheduler gate failed: pool.steals == 0 in bench json" >&2
         jq '.pool' "$BENCH_JSON" >&2; exit 1; }
  jq -e '.pool | has("spec_cancelled") and has("spec_committed") and has("splits")' \
    "$BENCH_JSON" >/dev/null
  jq -e '[.experiments[] | select(.name == "figure5-jobs")][0]
         | .identical_output == true' "$BENCH_JSON" >/dev/null \
    || { echo "figure5 output differs between jobs 1 and jobs 8" >&2; exit 1; }
  jq -e '[.experiments[] | select(.name == "figure5-jobs")][0]
         | (.cores < 4) or (.speedup >= 2)' "$BENCH_JSON" >/dev/null \
    || { echo "figure5 jobs-8 speedup gate failed (< 2x with >= 4 cores):" >&2
         jq '[.experiments[] | select(.name == "figure5-jobs")][0]' "$BENCH_JSON" >&2
         exit 1; }
  echo "bench json ok: $(jq -c '.context' "$BENCH_JSON") pool=$(jq -c '.pool' "$BENCH_JSON")"
else
  echo "bench json written ($BENCH_JSON); jq not installed, skipping assertions"
fi
rm -f "$BENCH_JSON"

# Scheduler stage: the work-stealing pool may only change wall-clock,
# never output.  `rspec all` must be byte-identical between --jobs 1 and
# --jobs 8 — with speculative sub-sweep execution both on and off — at
# two seeds.  The jobs-8 runs print their scheduler counters so the CI
# log records the steal/split/speculation activity behind the identity.
echo "== scheduler (rspec all: jobs 1 vs 8, speculation on/off, two seeds) =="
SCHED_DIR=$(mktemp -d /tmp/rs_sched.XXXXXX)
for seed in 3 11; do
  echo "-- seed=$seed --"
  timeout 900 "$RSPEC" all --scale 0.02 --tau 10 --seed "$seed" --jobs 1 \
    > "$SCHED_DIR/j1.txt"
  timeout 900 "$RSPEC" all --scale 0.02 --tau 10 --seed "$seed" --jobs 8 --pool-stats \
    > "$SCHED_DIR/j8.txt" 2> "$SCHED_DIR/j8.err"
  cmp "$SCHED_DIR/j1.txt" "$SCHED_DIR/j8.txt" \
    || { echo "rspec all differs between --jobs 1 and --jobs 8 (seed=$seed)" >&2; exit 1; }
  grep '^pool:' "$SCHED_DIR/j8.err" || true
  RS_SPEC=0 timeout 900 "$RSPEC" all --scale 0.02 --tau 10 --seed "$seed" --jobs 8 \
    > "$SCHED_DIR/j8_nospec.txt"
  cmp "$SCHED_DIR/j1.txt" "$SCHED_DIR/j8_nospec.txt" \
    || { echo "rspec all differs at --jobs 8 with speculation off (seed=$seed)" >&2; exit 1; }
  echo "scheduler identity ok at seed=$seed"
done
rm -rf "$SCHED_DIR"

# Online-service stage: a real `rspec serve` process on a temp Unix
# socket, driven by `rspec drive` with a figure2-scale recorded stream.
# Gates, in order: the STATS counters balance and the 4-shard server
# sustains >= 1M events/sec aggregate (busy-time based, so socket and
# client speed cannot mask a slow controller); the decisions digest is
# byte-identical at 1 and 4 shards; snapshot -> restart -> replay of the
# suffix reproduces the full run's snapshot bytes and digest; and the
# whole snapshot scenario repeats under an RS_FAULTS plan raising at
# serve.shard (with delays across all serve.* sites) without changing a
# byte — injected shard stalls are retried, never dropped or
# double-applied.
echo "== serve (throughput / shard invariance / snapshot / chaos) =="
SERVE_DIR=$(mktemp -d /tmp/rs_serve.XXXXXX)
SOCK="$SERVE_DIR/rspec.sock"
SERVE_ARGS=(--bench gzip --scale 0.02 --seed 3 --tau 10)
SERVE_FAULTS="seed=11,rate=0.8,max_raises=2,sites=serve.shard,delay=0.3,delay_us=500,delay_sites=serve"

run_drive() { # run_drive <shards> <repeat> <digest-file> [drive flags...]
  local shards=$1 repeat=$2 digest=$3; shift 3
  "$RSPEC" serve --socket "$SOCK" "${SERVE_ARGS[@]}" --shards "$shards" ${SERVE_SNAPSHOT:+--snapshot "$SERVE_SNAPSHOT"} &
  local pid=$!
  timeout 600 "$RSPEC" drive --socket "$SOCK" "${SERVE_ARGS[@]}" --repeat "$repeat" --shutdown "$@" > "$digest"
  wait "$pid"
}

run_drive 4 40 "$SERVE_DIR/d4.txt" --stats-json "$SERVE_DIR/stats.json"
if command -v jq >/dev/null 2>&1; then
  jq -e '.events == .applied and .protocol_errors == 0 and .shards == 4' "$SERVE_DIR/stats.json" >/dev/null
  jq -e '.aggregate_rate_eps >= 1000000' "$SERVE_DIR/stats.json" >/dev/null \
    || { echo "serve throughput gate failed (< 1M events/sec aggregate):" >&2
         jq '{events, aggregate_rate_eps, shards_detail}' "$SERVE_DIR/stats.json" >&2
         exit 1; }
  echo "serve stats ok: $(jq -c '{events, shards, aggregate_rate_eps}' "$SERVE_DIR/stats.json")"
else
  echo "serve stats written ($SERVE_DIR/stats.json); jq not installed, skipping assertions"
fi

run_drive 1 40 "$SERVE_DIR/d1.txt"
diff <(grep '^decisions:' "$SERVE_DIR/d1.txt") <(grep '^decisions:' "$SERVE_DIR/d4.txt") \
  || { echo "decisions digest differs between 1 and 4 shards" >&2; exit 1; }
echo "serve shard invariance ok: $(grep '^decisions:' "$SERVE_DIR/d4.txt")"

serve_snapshot_scenario() { # serve_snapshot_scenario <suffix> (uses current RS_FAULTS, if any)
  local tag=$1
  # one shot: the whole stream (repeat=2), snapshot at the end
  run_drive 4 2 "$SERVE_DIR/full$tag.txt" --snapshot-out "$SERVE_DIR/snap_full$tag"
  # two shots: prefix, snapshot to disk, restart from it, suffix
  rm -f "$SERVE_DIR/snap_mid$tag"
  SERVE_SNAPSHOT="$SERVE_DIR/snap_mid$tag" \
    run_drive 4 1 "$SERVE_DIR/prefix$tag.txt" --snapshot-out /dev/null
  SERVE_SNAPSHOT="$SERVE_DIR/snap_mid$tag" \
    run_drive 4 1 "$SERVE_DIR/resumed$tag.txt" --snapshot-out "$SERVE_DIR/snap_resumed$tag"
  cmp "$SERVE_DIR/snap_full$tag" "$SERVE_DIR/snap_resumed$tag" \
    || { echo "snapshot bytes differ after restore+replay ($tag)" >&2; exit 1; }
  diff <(grep '^decisions:' "$SERVE_DIR/full$tag.txt") <(grep '^decisions:' "$SERVE_DIR/resumed$tag.txt") \
    || { echo "decisions digest differs after restore+replay ($tag)" >&2; exit 1; }
}

serve_snapshot_scenario ""
echo "serve snapshot/restore ok"

RS_FAULTS="$SERVE_FAULTS" serve_snapshot_scenario "_chaos"
cmp "$SERVE_DIR/snap_full" "$SERVE_DIR/snap_full_chaos" \
  || { echo "injected serve.shard faults changed the snapshot bytes" >&2; exit 1; }
diff <(grep '^decisions:' "$SERVE_DIR/full.txt") <(grep '^decisions:' "$SERVE_DIR/full_chaos.txt") \
  || { echo "injected serve.shard faults changed the decisions digest" >&2; exit 1; }
echo "serve chaos ok (RS_FAULTS=$SERVE_FAULTS)"
rm -rf "$SERVE_DIR"

echo "== ci ok =="
