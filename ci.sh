#!/usr/bin/env bash
# Tier-1 verification in one command: format check, build, test suite.
#
#   ./ci.sh          # everything
#   ./ci.sh --quick  # skip the format check
#
# The format check runs `dune build @fmt`, which needs the ocamlformat
# binary for OCaml sources; where it is not installed (e.g. minimal
# containers) the check is skipped with a notice rather than failing —
# the build and tests are the gate that must always pass.
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" != "--quick" ]]; then
  if command -v ocamlformat >/dev/null 2>&1; then
    echo "== format check (dune build @fmt) =="
    if ! dune build @fmt; then
      echo "formatting differs: run 'dune fmt' and commit the result" >&2
      exit 1
    fi
  else
    echo "== format check skipped (ocamlformat not installed) =="
  fi
fi

echo "== build (dune build) =="
dune build

echo "== tests (dune runtest) =="
dune runtest

# The fault stress suite re-runs the figure2/table3 pipeline at --jobs 4
# under deterministic injected faults (raises in the cache compute
# bodies, delays in the pool) and asserts byte-identical output once the
# bounded retries succeed.  Two seeds exercise two failure schedules;
# any hang is caught by the timeout.
echo "== fault stress (RS_FAULTS, two seeds) =="
dune build test/main.exe
for seed in 1 7; do
  echo "-- seed=$seed --"
  RS_FAULTS="seed=$seed,rate=0.8,max_raises=2,sites=cache,delay=0.2,delay_us=300,delay_sites=pool" \
    timeout 600 ./_build/default/test/main.exe test fault
done

echo "== ci ok =="
